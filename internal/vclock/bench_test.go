package vclock

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchPair(n int) (VC, VC) {
	r := rand.New(rand.NewSource(int64(n)))
	a, b := make(VC, n), make(VC, n)
	for i := range a {
		a[i] = uint64(r.Intn(100))
		b[i] = a[i] + uint64(r.Intn(3)) // mostly comparable, some ties
	}
	return a, b
}

// BenchmarkLess is the detector's innermost operation: the O(n) factor in
// every complexity bound of §IV.
func BenchmarkLess(b *testing.B) {
	for _, n := range []int{8, 64, 512} {
		x, y := benchPair(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = x.Less(y)
			}
		})
	}
}

func BenchmarkCompare(b *testing.B) {
	for _, n := range []int{8, 64, 512} {
		x, y := benchPair(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = x.Compare(y)
			}
		})
	}
}

func BenchmarkMergeMax(b *testing.B) {
	for _, n := range []int{8, 64, 512} {
		x, y := benchPair(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				x.MergeMax(y)
			}
		})
	}
}

func BenchmarkMarshal(b *testing.B) {
	x, _ := benchPair(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = x.MarshalBinary()
	}
}
