package vclock

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchPair(n int) (VC, VC) {
	r := rand.New(rand.NewSource(int64(n)))
	a, b := make(VC, n), make(VC, n)
	for i := range a {
		a[i] = uint32(r.Intn(100))
		b[i] = a[i] + uint32(r.Intn(3)) // mostly comparable, some ties
	}
	return a, b
}

// BenchmarkLess is the detector's innermost operation: the O(n) factor in
// every complexity bound of §IV.
func BenchmarkLess(b *testing.B) {
	for _, n := range []int{8, 64, 512} {
		x, y := benchPair(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = x.Less(y)
			}
		})
	}
}

func BenchmarkCompare(b *testing.B) {
	for _, n := range []int{8, 64, 512} {
		x, y := benchPair(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = x.Compare(y)
			}
		})
	}
}

func BenchmarkMergeMax(b *testing.B) {
	for _, n := range []int{8, 64, 512} {
		x, y := benchPair(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				x.MergeMax(y)
			}
		})
	}
}

func BenchmarkMarshal(b *testing.B) {
	x, _ := benchPair(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = x.MarshalBinary()
	}
}

// BenchmarkCompareLess measures the fused paired comparison against two
// separate Less calls on the same operands — the elimination loop's inner
// step.
func BenchmarkCompareLess(b *testing.B) {
	for _, n := range []int{8, 64, 512} {
		xLo, yHi := benchPair(n)
		yLo, xHi := benchPair(n + 1)
		yLo, xHi = yLo[:n], xHi[:n]
		b.Run(fmt.Sprintf("fused/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _ = CompareLess(xLo, yHi, yLo, xHi)
			}
		})
		b.Run(fmt.Sprintf("separate/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = xLo.Less(yHi)
				_ = yLo.Less(xHi)
			}
		})
	}
}

// BenchmarkAppendDelta measures the v2 codec on the workload it is built
// for: a near-monotone step from its basis clock. bytes/frame makes the
// compression visible next to v1's fixed 4+8n.
func BenchmarkAppendDelta(b *testing.B) {
	for _, n := range []int{8, 64, 512} {
		base := make(VC, n)
		v := make(VC, n)
		for i := range base {
			base[i] = uint32(1000 + i)
			v[i] = base[i] + uint32(i%3)
		}
		buf := make([]byte, 0, WireSize(n))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf = v.AppendDelta(buf[:0], base)
			}
			b.ReportMetric(float64(len(buf)), "bytes/frame")
		})
	}
}

func BenchmarkConsumeDelta(b *testing.B) {
	for _, n := range []int{8, 64, 512} {
		base := make(VC, n)
		v := make(VC, n)
		for i := range base {
			base[i] = uint32(1000 + i)
			v[i] = base[i] + uint32(i%3)
		}
		data := v.AppendDelta(nil, base)
		dst := make(VC, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ConsumeDelta(data, &dst, base); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkString covers the Strict-mode panic/debug formatting path.
func BenchmarkString(b *testing.B) {
	x, _ := benchPair(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.String()
	}
}
