package vclock

// Bounds kernels for interval aggregation (⊓, paper Eq. 5/6): an aggregate's
// lower bound is the component-wise max of the members' Lo and its upper
// bound the component-wise min of their Hi. BoundsInit seeds a destination
// pair from the first two members in one fused pass — no intermediate copy —
// and BoundsFold folds each further member in. On amd64 with AVX2 both run
// vectorized (bounds_amd64.s); the scalar bodies below are the portable
// implementation and the differential-test oracle.

// BoundsInit sets lo = max(aLo, bLo) and hi = min(aHi, bHi) component-wise.
// All six clocks must have equal length; lo and hi must not alias the
// sources.
func BoundsInit(lo, hi, aLo, aHi, bLo, bHi VC) {
	lo.check(aLo)
	lo.check(bLo)
	hi.check(aHi)
	hi.check(bHi)
	boundsInitImpl(lo, hi, aLo, aHi, bLo, bHi)
}

// BoundsFold folds one more member in: lo = max(lo, mLo), hi = min(hi, mHi)
// component-wise.
func BoundsFold(lo, hi, mLo, mHi VC) {
	lo.check(mLo)
	hi.check(mHi)
	boundsFoldImpl(lo, hi, mLo, mHi)
}

func boundsInitScalar(lo, hi, aLo, aHi, bLo, bHi VC) {
	for k := range lo {
		l, h := aLo[k], aHi[k]
		if v := bLo[k]; v > l {
			l = v
		}
		if v := bHi[k]; v < h {
			h = v
		}
		lo[k], hi[k] = l, h
	}
}

func boundsFoldScalar(lo, hi, mLo, mHi VC) {
	for k := range lo {
		if v := mLo[k]; v > lo[k] {
			lo[k] = v
		}
		if v := mHi[k]; v < hi[k] {
			hi[k] = v
		}
	}
}
