//go:build amd64

package vclock

// boundsVecMin is the clock width from which the vector bounds kernels beat
// the scalar loops.
const boundsVecMin = 16

// boundsInitQuad and boundsFoldQuad are the AVX2 kernels (bounds_amd64.s);
// n must be positive and a multiple of 8.
//
//go:noescape
func boundsInitQuad(lo, hi, aLo, aHi, bLo, bHi *uint32, n int)

//go:noescape
func boundsFoldQuad(lo, hi, mLo, mHi *uint32, n int)

func boundsInitImpl(lo, hi, aLo, aHi, bLo, bHi VC) {
	n := len(lo)
	if !hasAVX2 || n < boundsVecMin {
		boundsInitScalar(lo, hi, aLo, aHi, bLo, bHi)
		return
	}
	m := n &^ 7
	boundsInitQuad(&lo[0], &hi[0], &aLo[0], &aHi[0], &bLo[0], &bHi[0], m)
	if m < n {
		boundsInitScalar(lo[m:], hi[m:], aLo[m:], aHi[m:], bLo[m:], bHi[m:])
	}
}

func boundsFoldImpl(lo, hi, mLo, mHi VC) {
	n := len(lo)
	if !hasAVX2 || n < boundsVecMin {
		boundsFoldScalar(lo, hi, mLo, mHi)
		return
	}
	m := n &^ 7
	boundsFoldQuad(&lo[0], &hi[0], &mLo[0], &mHi[0], m)
	if m < n {
		boundsFoldScalar(lo[m:], hi[m:], mLo[m:], mHi[m:])
	}
}
