//go:build amd64

#include "textflag.h"

// With uint32 components the bounds kernels map directly onto AVX2's unsigned
// doubleword max/min (VPMAXUD/VPMINUD) — no sign-flip idiom, one instruction
// per merge, eight lanes per 32-byte vector.

// func boundsInitQuad(lo, hi, aLo, aHi, bLo, bHi *uint32, n int)
TEXT ·boundsInitQuad(SB), NOSPLIT, $0-56
	MOVQ lo+0(FP), SI
	MOVQ hi+8(FP), DI
	MOVQ aLo+16(FP), R8
	MOVQ aHi+24(FP), R9
	MOVQ bLo+32(FP), R10
	MOVQ bHi+40(FP), R11
	MOVQ n+48(FP), CX

loop:
	// lo = max(aLo, bLo)
	VMOVDQU (R8), Y0
	VMOVDQU (R10), Y1
	VPMAXUD Y1, Y0, Y2
	VMOVDQU Y2, (SI)

	// hi = min(aHi, bHi)
	VMOVDQU (R9), Y0
	VMOVDQU (R11), Y1
	VPMINUD Y1, Y0, Y2
	VMOVDQU Y2, (DI)

	ADDQ $32, SI
	ADDQ $32, DI
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	SUBQ $8, CX
	JNZ  loop

	VZEROUPPER
	RET

// func boundsFoldQuad(lo, hi, mLo, mHi *uint32, n int)
TEXT ·boundsFoldQuad(SB), NOSPLIT, $0-40
	MOVQ lo+0(FP), SI
	MOVQ hi+8(FP), DI
	MOVQ mLo+16(FP), R8
	MOVQ mHi+24(FP), R9
	MOVQ n+32(FP), CX

loop:
	// lo = max(lo, mLo)
	VMOVDQU (SI), Y0
	VMOVDQU (R8), Y1
	VPMAXUD Y1, Y0, Y2
	VMOVDQU Y2, (SI)

	// hi = min(hi, mHi)
	VMOVDQU (DI), Y0
	VMOVDQU (R9), Y1
	VPMINUD Y1, Y0, Y2
	VMOVDQU Y2, (DI)

	ADDQ $32, SI
	ADDQ $32, DI
	ADDQ $32, R8
	ADDQ $32, R9
	SUBQ $8, CX
	JNZ  loop

	VZEROUPPER
	RET
