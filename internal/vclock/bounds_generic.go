//go:build !amd64

package vclock

func boundsInitImpl(lo, hi, aLo, aHi, bLo, bHi VC) {
	boundsInitScalar(lo, hi, aLo, aHi, bLo, bHi)
}

func boundsFoldImpl(lo, hi, mLo, mHi VC) {
	boundsFoldScalar(lo, hi, mLo, mHi)
}
