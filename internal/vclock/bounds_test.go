package vclock

import (
	"math/rand"
	"testing"
)

// TestBoundsKernelsMatchScalar differentially tests the arch-specific bounds
// kernels (the AVX2 path on amd64) against the scalar loops, across widths
// straddling the vector stride and values at the unsigned/signed boundary.
func TestBoundsKernelsMatchScalar(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	pool := []uint32{0, 1, 2, 7, 1<<31 - 1, 1 << 31, 1<<31 + 1, ^uint32(0)}
	fill := func(n int) VC {
		v := make(VC, n)
		for k := range v {
			v[k] = pool[r.Intn(len(pool))]
		}
		return v
	}
	for _, n := range []int{1, 3, 4, 5, 15, 16, 17, 33, 100, 1023} {
		for trial := 0; trial < 200; trial++ {
			aLo, aHi, bLo, bHi := fill(n), fill(n), fill(n), fill(n)

			gotLo, gotHi := make(VC, n), make(VC, n)
			BoundsInit(gotLo, gotHi, aLo, aHi, bLo, bHi)
			wantLo, wantHi := make(VC, n), make(VC, n)
			boundsInitScalar(wantLo, wantHi, aLo, aHi, bLo, bHi)
			if !gotLo.Equal(wantLo) || !gotHi.Equal(wantHi) {
				t.Fatalf("BoundsInit n=%d:\n got lo=%v hi=%v\nwant lo=%v hi=%v", n, gotLo, gotHi, wantLo, wantHi)
			}

			mLo, mHi := fill(n), fill(n)
			wantLo, wantHi = gotLo.Clone(), gotHi.Clone()
			boundsFoldScalar(wantLo, wantHi, mLo, mHi)
			BoundsFold(gotLo, gotHi, mLo, mHi)
			if !gotLo.Equal(wantLo) || !gotHi.Equal(wantHi) {
				t.Fatalf("BoundsFold n=%d:\n got lo=%v hi=%v\nwant lo=%v hi=%v", n, gotLo, gotHi, wantLo, wantHi)
			}
		}
	}
}
