package vclock

import (
	"encoding/binary"
	"fmt"
)

// MarshalBinary encodes the clock as a length-prefixed sequence of big-endian
// 64-bit components. The wire form is used by the simulated network layer to
// ship interval bounds between detector nodes, mirroring a deployment where
// timestamps are piggybacked on control messages.
func (v VC) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 4+8*len(v))
	binary.BigEndian.PutUint32(buf, uint32(len(v)))
	for k, c := range v {
		binary.BigEndian.PutUint64(buf[4+8*k:], c)
	}
	return buf, nil
}

// UnmarshalBinary decodes a clock previously produced by MarshalBinary.
func (v *VC) UnmarshalBinary(data []byte) error {
	if len(data) < 4 {
		return fmt.Errorf("vclock: short buffer (%d bytes)", len(data))
	}
	n := int(binary.BigEndian.Uint32(data))
	if len(data) != 4+8*n {
		return fmt.Errorf("vclock: want %d bytes for %d components, have %d", 4+8*n, n, len(data))
	}
	out := make(VC, n)
	for k := range out {
		out[k] = binary.BigEndian.Uint64(data[4+8*k:])
	}
	*v = out
	return nil
}

// WireSize returns the encoded size in bytes of a clock for an n-process
// system. The complexity experiments use it to convert message counts into
// byte volumes (each interval carries two clocks — its lower and upper bound).
func WireSize(n int) int { return 4 + 8*n }
