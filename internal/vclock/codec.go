package vclock

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Codec error categories. Consumers (internal/wire, transports) dispatch on
// these to tell a short read from structural corruption; wire re-wraps them
// into its own ErrTruncated/ErrCorrupt sentinels.
var (
	// ErrTruncated marks a buffer shorter than its encoding claims.
	ErrTruncated = errors.New("vclock: truncated encoding")
	// ErrCorrupt marks a structurally invalid encoding (impossible length,
	// varint overflow). It can never become valid with more bytes.
	ErrCorrupt = errors.New("vclock: corrupt encoding")
)

// MaxComponents bounds the component count a decoder accepts before
// allocating: a clock claiming more processes than any plausible deployment
// is corrupt, not merely large. It matches wire.MaxSpan.
const MaxComponents = 1 << 20

// MarshalBinary encodes the clock as a length-prefixed sequence of big-endian
// 64-bit components — wire format v1, fixed 8 bytes per component. The wire
// layer ships interval bounds between detector nodes in this form when
// talking to pre-v2 peers. The field stays 8 bytes even though components are
// uint32 in memory, so v1 encodings are bit-for-bit stable across the
// narrowing; the decoder rejects inbound components that no longer fit.
func (v VC) MarshalBinary() ([]byte, error) {
	return v.AppendBinary(make([]byte, 0, WireSize(len(v)))), nil
}

// AppendBinary appends the v1 fixed-width encoding of v to buf and returns
// the extended buffer. It allocates only when buf lacks capacity, so encoders
// that reuse scratch buffers stay allocation-free.
func (v VC) AppendBinary(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(v)))
	for _, c := range v {
		buf = binary.BigEndian.AppendUint64(buf, uint64(c))
	}
	return buf
}

// UnmarshalBinary decodes a clock previously produced by MarshalBinary. The
// buffer must contain exactly one encoded clock.
func (v *VC) UnmarshalBinary(data []byte) error {
	rest, err := ConsumeBinary(data, v)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("vclock: %d trailing bytes: %w", len(rest), ErrCorrupt)
	}
	return nil
}

// ConsumeBinary decodes one v1 fixed-width clock from the front of data into
// *dst, reusing dst's backing array when it has capacity, and returns the
// unconsumed remainder. The length claimed by the prefix is validated against
// the bytes actually present before anything is allocated.
func ConsumeBinary(data []byte, dst *VC) (rest []byte, err error) {
	rest, _, err = ConsumeBinarySum(data, dst)
	return rest, err
}

// ConsumeBinarySum is ConsumeBinary with the decoded clock's component-sum
// digest (see VC.Sum) accumulated in the same pass, so decode paths that feed
// the comparison-pruning layer never rescan the clock just to digest it.
func ConsumeBinarySum(data []byte, dst *VC) (rest []byte, sum uint64, err error) {
	if len(data) < 4 {
		return nil, 0, fmt.Errorf("vclock: %d-byte buffer lacks length prefix: %w", len(data), ErrTruncated)
	}
	n := int(binary.BigEndian.Uint32(data))
	if n > MaxComponents {
		return nil, 0, fmt.Errorf("vclock: %d components: %w", n, ErrCorrupt)
	}
	if len(data) < 4+8*n {
		return nil, 0, fmt.Errorf("vclock: want %d bytes for %d components, have %d: %w", 4+8*n, n, len(data), ErrTruncated)
	}
	out := sized(dst, n)
	for k := range out {
		c := binary.BigEndian.Uint64(data[4+8*k:])
		if c > maxComponent {
			return nil, 0, fmt.Errorf("vclock: component %d value %d exceeds the uint32 clock domain: %w", k, c, ErrCorrupt)
		}
		out[k] = uint32(c)
		sum += c
	}
	*dst = out
	return data[4+8*n:], sum, nil
}

// maxComponent is the largest value a clock component can hold.
const maxComponent = 1<<32 - 1

// AppendDelta appends the v2 delta-varint encoding of v against base to buf
// and returns the extended buffer: a uvarint component count followed by one
// zig-zag varint per component holding the wrapped difference v[k]−base[k].
// A nil base encodes against the zero clock (absolute values). Differences
// are computed in the signed 64-bit domain, where every pair of uint32
// components subtracts exactly, so the round trip is lossless while keeping
// small moves — the overwhelmingly common case for the near-monotone clocks
// of successive reports (Theorem 2 succession) — at one or two bytes per
// component. base must be nil or match v's length.
func (v VC) AppendDelta(buf []byte, base VC) []byte {
	if base != nil {
		v.check(base)
	}
	buf = binary.AppendUvarint(buf, uint64(len(v)))
	for k, c := range v {
		var b uint32
		if base != nil {
			b = base[k]
		}
		buf = binary.AppendVarint(buf, int64(c)-int64(b))
	}
	return buf
}

// ConsumeDelta decodes one delta-varint clock from the front of data into
// *dst, applying it against base (nil base = zero clock), and returns the
// unconsumed remainder. dst's backing array is reused when it has capacity;
// dst may alias base, in which case the patch is applied in place. The
// declared component count is validated against the bytes present (a varint
// is at least one byte) before any allocation. base must be nil or match the
// encoded length, else the encoding is rejected as corrupt — a delta against
// the wrong clock domain can never decode meaningfully.
func ConsumeDelta(data []byte, dst *VC, base VC) (rest []byte, err error) {
	rest, _, err = ConsumeDeltaSum(data, dst, base)
	return rest, err
}

// ConsumeDeltaSum is ConsumeDelta with the decoded clock's component-sum
// digest (see VC.Sum) accumulated in the same pass. The hot wire path decodes
// every inbound bound clock exactly once; returning the digest here lets the
// comparison-pruning layer have it without a second O(n) scan.
func ConsumeDeltaSum(data []byte, dst *VC, base VC) (rest []byte, sum uint64, err error) {
	n64, sz := binary.Uvarint(data)
	if sz <= 0 {
		return nil, 0, varintErr(sz, "component count")
	}
	data = data[sz:]
	if n64 > MaxComponents {
		return nil, 0, fmt.Errorf("vclock: %d components: %w", n64, ErrCorrupt)
	}
	n := int(n64)
	if len(data) < n {
		return nil, 0, fmt.Errorf("vclock: %d bytes cannot hold %d delta components: %w", len(data), n, ErrTruncated)
	}
	if base != nil && base.Len() != n {
		return nil, 0, fmt.Errorf("vclock: delta of %d components against %d-component base: %w", n, base.Len(), ErrCorrupt)
	}
	out := sized(dst, n)
	for k := range out {
		d, sz := binary.Varint(data)
		if sz <= 0 {
			return nil, 0, varintErr(sz, "delta component")
		}
		data = data[sz:]
		var b int64
		if base != nil {
			b = int64(base[k])
		}
		c := b + d
		if c < 0 || c > maxComponent {
			return nil, 0, fmt.Errorf("vclock: delta component %d lands at %d, outside the uint32 clock domain: %w", k, c, ErrCorrupt)
		}
		out[k] = uint32(c)
		sum += uint64(c)
	}
	*dst = out
	return data, sum, nil
}

// DeltaSize returns the encoded size in bytes of v delta-encoded against
// base (nil base = zero clock), without encoding. The byte-volume experiments
// use it to account wire format v2 alongside the v1 WireSize.
func (v VC) DeltaSize(base VC) int {
	if base != nil {
		v.check(base)
	}
	size := uvarintLen(uint64(len(v)))
	for k, c := range v {
		var b uint32
		if base != nil {
			b = base[k]
		}
		d := int64(c) - int64(b)
		size += uvarintLen(uint64(d)<<1 ^ uint64(d>>63)) // zig-zag image
	}
	return size
}

// sized returns *dst resized to n components, reusing its backing array when
// capacity allows.
func sized(dst *VC, n int) VC {
	if cap(*dst) >= n {
		return (*dst)[:n]
	}
	return make(VC, n)
}

// uvarintLen is the encoded length of a uvarint.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// varintErr classifies a binary.Uvarint/Varint failure: 0 means the buffer
// ran out mid-varint (truncated), negative means 64-bit overflow (corrupt).
func varintErr(sz int, what string) error {
	if sz == 0 {
		return fmt.Errorf("vclock: %s: %w", what, ErrTruncated)
	}
	return fmt.Errorf("vclock: %s overflows: %w", what, ErrCorrupt)
}

// WireSize returns the v1 encoded size in bytes of a clock for an n-process
// system. The complexity experiments use it to convert message counts into
// byte volumes (each interval carries two clocks — its lower and upper bound).
func WireSize(n int) int { return 4 + 8*n }
