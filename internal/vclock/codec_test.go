package vclock

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestAppendConsumeBinaryRoundTrip(t *testing.T) {
	v := Of(0, 1, math.MaxUint32, 42)
	buf := v.AppendBinary(nil)
	legacy, _ := v.MarshalBinary()
	if !bytes.Equal(buf, legacy) {
		t.Fatalf("AppendBinary %x differs from MarshalBinary %x", buf, legacy)
	}
	var back VC
	rest, err := ConsumeBinary(append(buf, 0xAA), &back)
	if err != nil {
		t.Fatalf("ConsumeBinary: %v", err)
	}
	if !back.Equal(v) {
		t.Fatalf("round trip changed the clock: %v vs %v", back, v)
	}
	if len(rest) != 1 || rest[0] != 0xAA {
		t.Fatalf("rest = %x, want the trailing sentinel byte", rest)
	}
}

func TestConsumeBinaryReusesStorage(t *testing.T) {
	v := Of(7, 8, 9)
	buf := v.AppendBinary(nil)
	dst := make(VC, 8)
	p := &dst[0]
	if _, err := ConsumeBinary(buf, &dst); err != nil {
		t.Fatal(err)
	}
	if len(dst) != 3 || &dst[0] != p {
		t.Fatal("ConsumeBinary reallocated although dst had capacity")
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	cases := []struct {
		name    string
		base, v VC
	}{
		{"zero base", nil, Of(3, 0, 5)},
		{"small forward", Of(10, 20, 30), Of(12, 20, 31)},
		{"mixed direction", Of(10, 20, 30), Of(9, 25, 30)},
		{"extremes", Of(0, math.MaxUint32), Of(math.MaxUint32, 0)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := tc.v.AppendDelta(nil, tc.base)
			if got := tc.v.DeltaSize(tc.base); got != len(buf) {
				t.Fatalf("DeltaSize %d, encoded %d bytes", got, len(buf))
			}
			var back VC
			rest, err := ConsumeDelta(buf, &back, tc.base)
			if err != nil {
				t.Fatalf("ConsumeDelta: %v", err)
			}
			if len(rest) != 0 {
				t.Fatalf("%d bytes left over", len(rest))
			}
			if !back.Equal(tc.v) {
				t.Fatalf("round trip changed the clock: %v vs %v", back, tc.v)
			}
		})
	}
}

// TestDeltaCompression pins the point of the codec: a near-monotone step
// from its base must cost ~1 byte per component instead of v1's fixed 8.
func TestDeltaCompression(t *testing.T) {
	n := 64
	base := make(VC, n)
	v := make(VC, n)
	for i := range base {
		base[i] = uint32(1000 + i)
		v[i] = base[i] + uint32(i%3) // deltas 0..2
	}
	size := v.DeltaSize(base)
	if size > 2+n { // count prefix + 1 byte per component
		t.Fatalf("delta of a near-monotone step costs %d bytes for n=%d", size, n)
	}
	if v1 := WireSize(n); size*3 > v1 {
		t.Fatalf("delta %d not clearly smaller than v1 %d", size, v1)
	}
}

func TestConsumeDeltaInPlaceOverBase(t *testing.T) {
	base := Of(5, 5, 5)
	v := Of(6, 4, 5)
	buf := v.AppendDelta(nil, base)
	dst := base // alias: patch the link state in place
	if _, err := ConsumeDelta(buf, &dst, base); err != nil {
		t.Fatal(err)
	}
	if !dst.Equal(v) {
		t.Fatalf("in-place patch got %v, want %v", dst, v)
	}
}

func TestConsumeDeltaErrors(t *testing.T) {
	v := Of(1, 2, 3)
	good := v.AppendDelta(nil, nil)
	var dst VC

	if _, err := ConsumeDelta(nil, &dst, nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty buffer: %v, want ErrTruncated", err)
	}
	if _, err := ConsumeDelta(good[:len(good)-1], &dst, nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("cut body: %v, want ErrTruncated", err)
	}
	// Component count larger than the remaining bytes can back.
	if _, err := ConsumeDelta([]byte{0xFF, 0x07}, &dst, nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("oversized count: %v, want ErrTruncated", err)
	}
	// Count beyond MaxComponents is corrupt regardless of buffer size.
	huge := []byte{0x80, 0x80, 0x80, 0x80, 0x08} // uvarint 2^31
	if _, err := ConsumeDelta(huge, &dst, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("giant count: %v, want ErrCorrupt", err)
	}
	// Base of the wrong domain size.
	if _, err := ConsumeDelta(good, &dst, Of(1, 2)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mismatched base: %v, want ErrCorrupt", err)
	}
	// A varint overflowing 64 bits is corrupt.
	over := []byte{1, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ConsumeDelta(over, &dst, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("varint overflow: %v, want ErrCorrupt", err)
	}
}

func TestCompareLessMatchesLess(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + r.Intn(6)
		mk := func() VC {
			v := make(VC, n)
			for i := range v {
				v[i] = uint32(r.Intn(4))
			}
			return v
		}
		aLo, aHi, bLo, bHi := mk(), mk(), mk(), mk()
		gotA, gotB := CompareLess(aLo, bHi, bLo, aHi)
		if wantA, wantB := aLo.Less(bHi), bLo.Less(aHi); gotA != wantA || gotB != wantB {
			t.Fatalf("CompareLess(%v,%v,%v,%v) = %v,%v want %v,%v",
				aLo, bHi, bLo, aHi, gotA, gotB, wantA, wantB)
		}
	}
}

// FuzzDecodeDelta hardens the delta decoder: arbitrary bytes must never
// panic, must not allocate the declared component count before validating it
// against the bytes present, must reject with the typed sentinels, and every
// accepted clock must re-encode to an equivalent value.
func FuzzDecodeDelta(f *testing.F) {
	f.Add(Of(1, 2, 3).AppendDelta(nil, nil), []byte{})
	f.Add(Of(9, 9).AppendDelta(nil, Of(8, 10)), Of(8, 10).AppendBinary(nil))
	f.Add([]byte{}, []byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x0F}, []byte{})
	f.Fuzz(func(t *testing.T, data, baseBytes []byte) {
		var base VC
		if len(baseBytes) > 0 {
			if _, err := ConsumeBinary(baseBytes, &base); err != nil {
				base = nil
			}
		}
		var v VC
		rest, err := ConsumeDelta(data, &v, base)
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error %v wraps neither sentinel", err)
			}
			return
		}
		consumed := len(data) - len(rest)
		buf := v.AppendDelta(nil, base)
		var back VC
		if _, err := ConsumeDelta(buf, &back, base); err != nil {
			t.Fatalf("re-decode of re-encoded clock failed: %v", err)
		}
		if !back.Equal(v) {
			t.Fatalf("decode/encode/decode changed the clock: %v vs %v", back, v)
		}
		if len(buf) > consumed {
			// Canonical varints never grow: our encoder is minimal, so a
			// longer re-encode would mean we mis-measured the input.
			t.Fatalf("re-encode grew: consumed %d, re-encoded %d", consumed, len(buf))
		}
	})
}
