//go:build amd64

package vclock

// The AVX2 comparison kernel. The detection hot path is dominated by fused
// bound comparisons whose common verdict (pairwise overlap) requires scanning
// every component, so the kernel drops the scalar loop's early exits and
// instead streams all four operand clocks eight uint32 components per step,
// accumulating per-lane "exceeds" and "equal" masks that reduce to the four
// facts CompareLess needs: ∃k a[k]>b[k] and ∃k a[k]≠b[k], per direction.

// compareQuadBits is the bit layout of compareQuad's result.
const (
	cmpFailA   = 1 << 0 // ∃k: aLo[k] > bHi[k]
	cmpStrictA = 1 << 1 // ∃k: aLo[k] ≠ bHi[k]
	cmpFailB   = 1 << 2 // ∃k: bLo[k] > aHi[k]
	cmpStrictB = 1 << 3 // ∃k: bLo[k] ≠ aHi[k]
)

// compareQuad scans n components (n > 0, n ≡ 0 mod 8) of the four clocks and
// returns the cmp* facts as a bitmask. Implemented in compare_amd64.s;
// requires AVX2.
//
//go:noescape
func compareQuad(aLo, bHi, bLo, aHi *uint32, n int) uint64

// cpuHasAVX2 reports AVX2 support with OS-enabled YMM state (CPUID +
// XGETBV); implemented in compare_amd64.s.
func cpuHasAVX2() bool

var hasAVX2 = cpuHasAVX2()

// compareVecMin is the clock width from which the vector kernel beats the
// scalar loop (kernel call overhead plus the lost early exits amortize over
// the streamed components).
const compareVecMin = 16

func compareLessImpl(aLo, bHi, bLo, aHi VC) (aLob, bLoa bool) {
	n := len(aLo)
	if !hasAVX2 || n < compareVecMin {
		return compareLessScalar(aLo, bHi, bLo, aHi)
	}
	m := n &^ 7
	bits := compareQuad(&aLo[0], &bHi[0], &bLo[0], &aHi[0], m)
	failA, strictA := bits&cmpFailA != 0, bits&cmpStrictA != 0
	failB, strictB := bits&cmpFailB != 0, bits&cmpStrictB != 0
	for k := m; k < n; k++ {
		a, b, c, d := aLo[k], bHi[k], bLo[k], aHi[k]
		if a > b {
			failA = true
		}
		if a != b {
			strictA = true
		}
		if c > d {
			failB = true
		}
		if c != d {
			strictB = true
		}
	}
	return !failA && strictA, !failB && strictB
}
