//go:build amd64

#include "textflag.h"

// func compareQuad(aLo, bHi, bLo, aHi *uint32, n int) uint64
//
// Streams the four clocks eight uint32 components per step, accumulating
// per-lane masks for "aLo exceeds bHi" / "bLo exceeds aHi" (unsigned, via the
// sign-flip + signed-compare idiom: VPCMPGTD is signed-only) and for
// component equality per direction. n must be positive and a multiple of 8;
// the caller handles the scalar tail.
TEXT ·compareQuad(SB), NOSPLIT, $0-48
	MOVQ aLo+0(FP), SI
	MOVQ bHi+8(FP), DI
	MOVQ bLo+16(FP), R8
	MOVQ aHi+24(FP), R9
	MOVQ n+32(FP), CX

	// Y15 = sign-flip constant, broadcast 0x80000000.
	MOVL $1, AX
	SHLL $31, AX
	MOVL AX, X0
	VPBROADCASTD X0, Y15

	VPXOR Y12, Y12, Y12        // gtA accumulator (any lane set => failA)
	VPXOR Y13, Y13, Y13        // gtB accumulator
	VPCMPEQD Y14, Y14, Y14     // eqA accumulator (all ones; AND of eq masks)
	VMOVDQA Y14, Y11           // eqB accumulator

	CMPQ CX, $16
	JL   loop

loop16:	// two vector steps per iteration while at least 16 components remain
	VMOVDQU (SI), Y0
	VMOVDQU (DI), Y1
	VMOVDQU (R8), Y2
	VMOVDQU (R9), Y3
	VMOVDQU 32(SI), Y4
	VMOVDQU 32(DI), Y5
	VMOVDQU 32(R8), Y6
	VMOVDQU 32(R9), Y7

	VPCMPEQD Y1, Y0, Y8
	VPAND Y8, Y14, Y14
	VPCMPEQD Y3, Y2, Y9
	VPAND Y9, Y11, Y11
	VPCMPEQD Y5, Y4, Y8
	VPAND Y8, Y14, Y14
	VPCMPEQD Y7, Y6, Y9
	VPAND Y9, Y11, Y11

	VPXOR Y15, Y0, Y0
	VPXOR Y15, Y1, Y1
	VPCMPGTD Y1, Y0, Y0
	VPOR Y0, Y12, Y12
	VPXOR Y15, Y2, Y2
	VPXOR Y15, Y3, Y3
	VPCMPGTD Y3, Y2, Y2
	VPOR Y2, Y13, Y13
	VPXOR Y15, Y4, Y4
	VPXOR Y15, Y5, Y5
	VPCMPGTD Y5, Y4, Y4
	VPOR Y4, Y12, Y12
	VPXOR Y15, Y6, Y6
	VPXOR Y15, Y7, Y7
	VPCMPGTD Y7, Y6, Y6
	VPOR Y6, Y13, Y13

	ADDQ $64, SI
	ADDQ $64, DI
	ADDQ $64, R8
	ADDQ $64, R9
	SUBQ $16, CX
	CMPQ CX, $16
	JGE  loop16

	TESTQ CX, CX
	JZ   done

loop:	// one vector step for the remaining 8 components
	VMOVDQU (SI), Y0           // aLo
	VMOVDQU (DI), Y1           // bHi
	VMOVDQU (R8), Y2           // bLo
	VMOVDQU (R9), Y3           // aHi

	VPCMPEQD Y1, Y0, Y4        // aLo == bHi per lane
	VPAND Y4, Y14, Y14
	VPCMPEQD Y3, Y2, Y5        // bLo == aHi per lane
	VPAND Y5, Y11, Y11

	VPXOR Y15, Y0, Y6
	VPXOR Y15, Y1, Y7
	VPCMPGTD Y7, Y6, Y6        // aLo > bHi per lane (unsigned)
	VPOR Y6, Y12, Y12
	VPXOR Y15, Y2, Y8
	VPXOR Y15, Y3, Y9
	VPCMPGTD Y9, Y8, Y8        // bLo > aHi per lane (unsigned)
	VPOR Y8, Y13, Y13

	ADDQ $32, SI
	ADDQ $32, DI
	ADDQ $32, R8
	ADDQ $32, R9
	SUBQ $8, CX
	JNZ  loop

done:
	VPMOVMSKB Y12, AX
	VPMOVMSKB Y13, BX
	VPMOVMSKB Y14, DX
	VPMOVMSKB Y11, R10

	XORQ R11, R11
	TESTL AX, AX               // failA: any gtA lane
	JZ   noFailA
	ORQ  $1, R11

noFailA:
	CMPL DX, $-1               // strictA: some lane not equal
	JE   noStrictA
	ORQ  $2, R11

noStrictA:
	TESTL BX, BX               // failB: any gtB lane
	JZ   noFailB
	ORQ  $4, R11

noFailB:
	CMPL R10, $-1              // strictB: some lane not equal
	JE   noStrictB
	ORQ  $8, R11

noStrictB:
	VZEROUPPER
	MOVQ R11, ret+40(FP)
	RET

// func cpuHasAVX2() bool
//
// CPUID leaf 1 for OSXSAVE+AVX, XGETBV XCR0 for OS-enabled XMM/YMM state,
// CPUID leaf 7 for AVX2 — the standard dependency-free detection sequence.
TEXT ·cpuHasAVX2(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, SI
	ANDL $0x18000000, SI       // OSXSAVE (bit 27) | AVX (bit 28)
	CMPL SI, $0x18000000
	JNE  no
	XORL CX, CX
	XGETBV
	ANDL $6, AX                // XCR0: XMM (bit 1) | YMM (bit 2) enabled
	CMPL AX, $6
	JNE  no
	MOVL $7, AX
	XORL CX, CX
	CPUID
	TESTL $0x20, BX            // AVX2 (EBX bit 5)
	JZ   no
	MOVB $1, ret+0(FP)
	RET

no:
	MOVB $0, ret+0(FP)
	RET
