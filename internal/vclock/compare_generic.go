//go:build !amd64

package vclock

func compareLessImpl(aLo, bHi, bLo, aHi VC) (aLob, bLoa bool) {
	return compareLessScalar(aLo, bHi, bLo, aHi)
}
