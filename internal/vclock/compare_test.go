package vclock

import (
	"math/rand"
	"testing"
)

// TestCompareLessImplMatchesScalar differentially tests the arch-specific
// CompareLess implementation (the AVX2 kernel on amd64) against the portable
// scalar loop across widths straddling the vector break-even point and the
// 4-component vector stride, with component values clustered near the
// unsigned/signed boundary to exercise the kernel's sign-flip compare idiom.
func TestCompareLessImplMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	pools := [][]uint32{
		{0, 1, 2, 3},
		{0, 1, 1<<31 - 1, 1 << 31, 1<<31 + 1, ^uint32(0)},
	}
	for _, n := range []int{1, 3, 4, 5, 15, 16, 17, 31, 32, 63, 64, 100, 1023} {
		for _, pool := range pools {
			for trial := 0; trial < 300; trial++ {
				aLo, bHi := make(VC, n), make(VC, n)
				bLo, aHi := make(VC, n), make(VC, n)
				for k := 0; k < n; k++ {
					aLo[k] = pool[r.Intn(len(pool))]
					bHi[k] = pool[r.Intn(len(pool))]
					bLo[k] = pool[r.Intn(len(pool))]
					aHi[k] = pool[r.Intn(len(pool))]
				}
				w1, w2 := compareLessScalar(aLo, bHi, bLo, aHi)
				g1, g2 := CompareLess(aLo, bHi, bLo, aHi)
				if w1 != g1 || w2 != g2 {
					t.Fatalf("n=%d: CompareLess = (%v,%v), scalar oracle = (%v,%v)\naLo=%v\nbHi=%v\nbLo=%v\naHi=%v",
						n, g1, g2, w1, w2, aLo, bHi, bLo, aHi)
				}
			}
		}
	}
}

// TestCompareLessEqualClocks pins the strictness rule (equal clocks are not
// Less) through the dispatch at a width the vector kernel handles.
func TestCompareLessEqualClocks(t *testing.T) {
	v := make(VC, 64)
	for k := range v {
		v[k] = uint32(k)
	}
	if a, b := CompareLess(v, v, v, v); a || b {
		t.Fatalf("CompareLess(v,v,v,v) = (%v,%v), want (false,false)", a, b)
	}
}
