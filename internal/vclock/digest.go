package vclock

// Scalar clock digests: a one-word summary of a clock that refutes most
// failed Less comparisons in O(1) instead of an O(n) lane scan.
//
// The invariant is a direct consequence of the order's definition: Less(x, y)
// requires x[k] ≤ y[k] for every component with strict inequality somewhere,
// so summing both sides gives sum(x) < sum(y) strictly. Contrapositive:
//
//	sum(x) ≥ sum(y)  ⇒  ¬Less(x, y)
//
// (the equal-sum case is covered too: either the clocks are identical — no
// strict component — or some component trades off upward, violating ≤). The
// guard is one-sided: sum(x) < sum(y) proves nothing, and the verdict falls
// through to the full comparison. Digests therefore pay off exactly where the
// detection engine spends its refutations — elimination rounds on heads that
// do not overlap, and Eq. 10 pruning checks — while overlap confirmations
// still stream every component.
//
// Sums never overflow: components are uint32 and decoders cap clocks at
// MaxComponents (2²⁰), so a digest is at most 2⁵² and fits uint64 exactly.

// Sum returns the component-sum digest of v. A nil or empty clock digests
// to 0. On amd64 with AVX2 wide clocks stream through a vector kernel
// (digest_amd64.s) — digests are computed once per enqueued interval, which
// at large p is itself a measurable share of the hot path.
func (v VC) Sum() uint64 {
	return sumImpl(v)
}

func sumScalar(v VC) uint64 {
	var s uint64
	for _, c := range v {
		s += uint64(c)
	}
	return s
}

// LessDigest evaluates v.Less(u) with a digest guard: sv and su must be
// Sum(v) and Sum(u). When the guard refutes the comparison, filtered is true
// and no component was scanned; otherwise the verdict comes from the full
// comparison kernel. The verdict is identical to v.Less(u) in all cases
// (property-tested against the unguarded scan).
func (v VC) LessDigest(u VC, sv, su uint64) (less, filtered bool) {
	if sv >= su {
		v.check(u)
		return false, true
	}
	less, _ = compareLessImpl(v, u, v, u)
	return less, false
}

// CompareLessDigest is CompareLess with a digest guard on each direction:
// the four sums must be Sum of the corresponding operand. filtered reports
// how many of the two directions were refuted without a lane scan (0, 1 or
// 2); a round with both directions refuted costs four word-compares total.
// The verdicts are identical to CompareLess in all cases.
func CompareLessDigest(aLo, bHi, bLo, aHi VC, sALo, sBHi, sBLo, sAHi uint64) (aLob, bLoa bool, filtered int) {
	aLo.check(bHi)
	bLo.check(aHi)
	aLo.check(bLo)
	refA := sALo >= sBHi // refutes aLo < bHi
	refB := sBLo >= sAHi // refutes bLo < aHi
	switch {
	case refA && refB:
		return false, false, 2
	case refA:
		bLoa, _ = compareLessImpl(bLo, aHi, bLo, aHi)
		return false, bLoa, 1
	case refB:
		aLob, _ = compareLessImpl(aLo, bHi, aLo, bHi)
		return aLob, false, 1
	default:
		aLob, bLoa = compareLessImpl(aLo, bHi, bLo, aHi)
		return aLob, bLoa, 0
	}
}
