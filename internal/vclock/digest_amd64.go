//go:build amd64

package vclock

// sumVecMin is the clock width from which the vector digest kernel beats the
// scalar loop (kernel call overhead amortizes over the streamed components).
const sumVecMin = 16

// sumQuad sums n components (n > 0, n ≡ 0 mod 8) of v into a uint64.
// Implemented in digest_amd64.s; requires AVX2. Each of the four qword
// accumulator lanes sees at most MaxComponents/4 uint32 additions, so lanes
// stay below 2⁵⁰ and the reduction is exact.
//
//go:noescape
func sumQuad(v *uint32, n int) uint64

func sumImpl(v VC) uint64 {
	n := len(v)
	if !hasAVX2 || n < sumVecMin {
		return sumScalar(v)
	}
	m := n &^ 7
	s := sumQuad(&v[0], m)
	if m < n {
		s += sumScalar(v[m:])
	}
	return s
}
