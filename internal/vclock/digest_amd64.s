//go:build amd64

#include "textflag.h"

// The digest kernel widens eight uint32 components per step into two 4×uint64
// vectors (VPMOVZXDQ) and accumulates with VPADDQ — widening before adding
// keeps every lane exact (a clock is at most MaxComponents = 2²⁰ components,
// so a lane tops out below 2⁵⁰), and two independent accumulators hide the
// add latency.

// func sumQuad(v *uint32, n int) uint64
TEXT ·sumQuad(SB), NOSPLIT, $0-24
	MOVQ  v+0(FP), SI
	MOVQ  n+8(FP), CX
	VPXOR Y0, Y0, Y0
	VPXOR Y3, Y3, Y3

loop:
	VPMOVZXDQ (SI), Y1
	VPMOVZXDQ 16(SI), Y2
	VPADDQ    Y1, Y0, Y0
	VPADDQ    Y2, Y3, Y3
	ADDQ      $32, SI
	SUBQ      $8, CX
	JNZ       loop

	// Reduce the eight qword lanes to one.
	VPADDQ       Y3, Y0, Y0
	VEXTRACTI128 $1, Y0, X1
	VPADDQ       X1, X0, X0
	VPSHUFD      $0x4E, X0, X1
	VPADDQ       X1, X0, X0
	VMOVQ        X0, AX
	MOVQ         AX, ret+16(FP)
	VZEROUPPER
	RET
