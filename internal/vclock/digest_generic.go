//go:build !amd64

package vclock

func sumImpl(v VC) uint64 {
	return sumScalar(v)
}
