package vclock

import (
	"math/rand"
	"testing"
)

// TestCompareLessDigestMatchesUnguarded is the digest guard's correctness
// property: across random and adversarial clocks — including near-equal pairs
// where the sums tie without the clocks being ordered, the exact regime the
// ≥-guard must classify correctly — the digest-guarded comparison returns the
// verdicts of the unguarded scan, on every architecture path the width
// selects (scalar below compareVecMin, the AVX2 kernel above it on amd64).
func TestCompareLessDigestMatchesUnguarded(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	pools := [][]uint32{
		{0, 1, 2},
		{0, 1, 2, 3, 1<<31 - 1, 1 << 31, ^uint32(0)},
	}
	for _, n := range []int{1, 3, 7, 15, 16, 17, 32, 63, 100, 1023} {
		for _, pool := range pools {
			for trial := 0; trial < 300; trial++ {
				aLo, bHi := make(VC, n), make(VC, n)
				bLo, aHi := make(VC, n), make(VC, n)
				for k := 0; k < n; k++ {
					aLo[k] = pool[r.Intn(len(pool))]
					bHi[k] = pool[r.Intn(len(pool))]
					bLo[k] = pool[r.Intn(len(pool))]
					aHi[k] = pool[r.Intn(len(pool))]
				}
				// Adversarial trials: make some operands ordered or identical
				// so sum ties and true Less verdicts both occur.
				switch trial % 4 {
				case 1:
					copy(bHi, aLo) // equal clocks: sum tie, not Less
				case 2:
					copy(bHi, aLo)
					bHi[r.Intn(n)] += 1 // aLo < bHi by one component
				case 3:
					// Trade-off: equal sums, unordered clocks (needs n ≥ 2).
					if n >= 2 {
						copy(bHi, aLo)
						i, j := 0, n-1
						if bHi[i] < ^uint32(0) && bHi[j] > 0 {
							bHi[i]++
							bHi[j]--
						}
					}
				}
				w1, w2 := CompareLess(aLo, bHi, bLo, aHi)
				g1, g2, filtered := CompareLessDigest(aLo, bHi, bLo, aHi,
					aLo.Sum(), bHi.Sum(), bLo.Sum(), aHi.Sum())
				if w1 != g1 || w2 != g2 {
					t.Fatalf("n=%d: CompareLessDigest = (%v,%v), CompareLess = (%v,%v)\naLo=%v\nbHi=%v\nbLo=%v\naHi=%v",
						n, g1, g2, w1, w2, aLo, bHi, bLo, aHi)
				}
				if filtered < 0 || filtered > 2 {
					t.Fatalf("n=%d: filtered = %d, want 0..2", n, filtered)
				}
				// A filtered direction must have been refuted: filtering can
				// never coincide with a true verdict.
				if filtered == 2 && (g1 || g2) {
					t.Fatalf("n=%d: both directions filtered yet verdict (%v,%v)", n, g1, g2)
				}
				lg, lf := aLo.LessDigest(bHi, aLo.Sum(), bHi.Sum())
				if lg != aLo.Less(bHi) {
					t.Fatalf("n=%d: LessDigest = %v, Less = %v", n, lg, aLo.Less(bHi))
				}
				if lf && lg {
					t.Fatalf("n=%d: LessDigest filtered a true verdict", n)
				}
			}
		}
	}
}

// TestCompareLessDigestFiltersRefutation pins that the guard actually fires:
// a clock with a strictly larger sum in the aLo-vs-bHi direction must be
// refuted in O(1).
func TestCompareLessDigestFiltersRefutation(t *testing.T) {
	aLo := Of(5, 5, 5)
	bHi := Of(1, 1, 1)
	bLo := Of(0, 0, 0)
	aHi := Of(9, 9, 9)
	aLob, bLoa, filtered := CompareLessDigest(aLo, bHi, bLo, aHi,
		aLo.Sum(), bHi.Sum(), bLo.Sum(), aHi.Sum())
	if aLob || !bLoa {
		t.Fatalf("verdicts = (%v,%v), want (false,true)", aLob, bLoa)
	}
	if filtered != 1 {
		t.Fatalf("filtered = %d, want 1", filtered)
	}
}

// TestSum pins the digest definition on edge shapes.
func TestSum(t *testing.T) {
	if got := (VC)(nil).Sum(); got != 0 {
		t.Fatalf("nil Sum = %d, want 0", got)
	}
	if got := Of(0).Sum(); got != 0 {
		t.Fatalf("zero Sum = %d, want 0", got)
	}
	v := Of(^uint32(0), ^uint32(0), 1)
	want := 2*uint64(^uint32(0)) + 1
	if got := v.Sum(); got != want {
		t.Fatalf("Sum = %d, want %d (must not wrap at 32 bits)", got, want)
	}
}

// TestSumMatchesScalar pins the vector digest kernel (sumImpl dispatch,
// including the AVX2 path on amd64) against the scalar reference across
// widths straddling the kernel's entry threshold and its 8-lane tail, with
// saturated components so lane accumulation exactness is exercised.
func TestSumMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	pool := []uint32{0, 1, 2, 1<<31 - 1, 1 << 31, ^uint32(0)}
	for _, n := range []int{1, 7, 8, 15, 16, 17, 24, 31, 100, 1023, 1024, 1025} {
		for trial := 0; trial < 50; trial++ {
			v := make(VC, n)
			for k := range v {
				v[k] = pool[r.Intn(len(pool))]
			}
			if got, want := v.Sum(), sumScalar(v); got != want {
				t.Fatalf("n=%d: Sum = %d, scalar = %d\nv=%v", n, got, want, v)
			}
		}
	}
}

// FuzzDeltaDigestConsistency asserts the codec-maintained digest invariant:
// for any clock that survives an AppendDelta/ConsumeDelta round trip (against
// a derived base, exercising both nil- and non-nil-base decode paths), the
// sum returned by ConsumeDeltaSum equals the recomputed VC.Sum of the decoded
// clock, and likewise for the v1 ConsumeBinarySum path.
func FuzzDeltaDigestConsistency(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, false)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}, true)
	f.Add([]byte{}, false)
	f.Fuzz(func(t *testing.T, raw []byte, useBase bool) {
		n := len(raw) / 4
		if n == 0 {
			return
		}
		v := make(VC, n)
		for k := range v {
			v[k] = uint32(raw[4*k]) | uint32(raw[4*k+1])<<8 |
				uint32(raw[4*k+2])<<16 | uint32(raw[4*k+3])<<24
		}
		var base VC
		if useBase {
			base = make(VC, n)
			for k := range base {
				base[k] = v[k] / 2
			}
		}
		enc := v.AppendDelta(nil, base)
		var dec VC
		rest, sum, err := ConsumeDeltaSum(enc, &dec, base)
		if err != nil {
			t.Fatalf("ConsumeDeltaSum rejected own encoding: %v", err)
		}
		if len(rest) != 0 {
			t.Fatalf("%d trailing bytes", len(rest))
		}
		if !dec.Equal(v) {
			t.Fatalf("round trip mismatch: %v vs %v", dec, v)
		}
		if want := dec.Sum(); sum != want {
			t.Fatalf("delta decode digest %d, recomputed %d", sum, want)
		}
		encV1 := v.AppendBinary(nil)
		var decV1 VC
		_, sumV1, err := ConsumeBinarySum(encV1, &decV1)
		if err != nil {
			t.Fatalf("ConsumeBinarySum rejected own encoding: %v", err)
		}
		if want := decV1.Sum(); sumV1 != want {
			t.Fatalf("v1 decode digest %d, recomputed %d", sumV1, want)
		}
	})
}
