package vclock

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalBinary hardens the wire decoder against arbitrary input: it
// must never panic, and every accepted input must round-trip bit-exactly.
func FuzzUnmarshalBinary(f *testing.F) {
	seed, _ := Of(1, 2, 3).MarshalBinary()
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		var v VC
		if err := v.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := v.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip not exact: %x vs %x", data, out)
		}
	})
}
