package vclock

import "fmt"

// Store is a struct-of-arrays arena for the clocks one detector node
// publishes: instead of one heap object per clock, clocks are carved
// sequentially out of large contiguous []uint32 chunks, all with the same
// stride n. Two things fall out of the flat layout:
//
//   - the fused comparison loops (CompareLess) walk contiguous memory — the
//     bounds of one aggregate sit in one cache-line run instead of two
//     scattered allocations, and a node's recent aggregates sit next to each
//     other, so the elimination loop's head-to-head checks stop taking a
//     cache miss per clock;
//
//   - allocation cost amortizes: one garbage-collected object per
//     chunkPairs aggregates instead of one (or, before CompactClone, two)
//     per aggregate. At p=1023 a bounds pair is 8 KiB; the per-detection
//     make+memmove of the clone-based path was the single largest line in
//     the scale-lane CPU profile.
//
// Clocks handed out by a Store are ordinary VCs: they stay valid forever
// (the chunk is garbage-collected only when every clock carved from it is
// unreachable) and must be treated as immutable once published, exactly like
// every other bound in the detector. A Store is not safe for concurrent use;
// each detector node owns one and allocates only on its owner goroutine.
type Store struct {
	n     int
	chunk []uint32
	off   int
	// Chunks grow geometrically from 2 pairs up to ~256 KiB (but never
	// fewer than 8 pairs): a store is per node, and most nodes publish a
	// handful of aggregates per run — a fixed large chunk would strand
	// hundreds of kilobytes per node at scale, while heavy publishers
	// converge on the amortized large-chunk rate after a few doublings.
	nextPairs, maxPairs int
	// arena, when set, supplies the chunks: many stores bump-allocate out
	// of shared slabs instead of each stranding its own chunk tails.
	arena *Arena
}

// NewStore returns a store producing clocks for an n-process system.
func NewStore(n int) *Store {
	return NewStoreIn(n, nil)
}

// NewStoreIn returns a store that carves its chunks from the shared arena
// (nil behaves exactly like NewStore). The store itself remains
// single-goroutine; only the chunk supply is shared.
func NewStoreIn(n int, arena *Arena) *Store {
	if n <= 0 {
		panic(fmt.Sprintf("vclock: invalid system size %d", n))
	}
	maxPairs := (256 * 1024) / (8 * n) // 2 clocks × 4 bytes × n per pair
	if maxPairs < 8 {
		maxPairs = 8
	}
	return &Store{n: n, nextPairs: 2, maxPairs: maxPairs, arena: arena}
}

// N returns the clock size the store produces.
func (s *Store) N() int { return s.n }

// AllocPair carves one adjacent Lo/Hi clock pair — the backing layout of an
// aggregated interval's bounds. Both clocks are zeroed, full-capacity-capped
// slices into the current chunk, with Lo immediately followed by Hi.
func (s *Store) AllocPair() (lo, hi VC) {
	span := 2 * s.n
	if s.off+span > len(s.chunk) {
		if s.arena != nil {
			s.chunk = s.arena.carve(span * s.nextPairs)
		} else {
			s.chunk = make([]uint32, span*s.nextPairs)
		}
		s.off = 0
		if s.nextPairs *= 2; s.nextPairs > s.maxPairs {
			s.nextPairs = s.maxPairs
		}
	}
	base := s.chunk[s.off:]
	lo = VC(base[:s.n:s.n])
	hi = VC(base[s.n:span:span])
	s.off += span
	return lo, hi
}
