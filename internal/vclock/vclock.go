// Package vclock implements vector clocks (Mattern 1988, Fidge 1991) for an
// asynchronous message-passing system of n processes, together with the
// component-wise lattice operations the hierarchical predicate-detection
// algorithm builds on.
//
// A vector clock VC is a vector of n non-negative integers. Entry VC[i] counts
// the events executed by process i that causally precede (or equal) the point
// the clock describes. The causal-precedence ("happens before") relation
// between two events maps onto the strict partial order Less between their
// timestamps:
//
//	e ≺ f  ⇔  VC(e) < VC(f)
//
// where V < U means V[k] ≤ U[k] for all k, with strict inequality somewhere.
//
// Besides event timestamps, the detection algorithm manipulates *cuts* of an
// execution: the bounds of an aggregated interval (paper Eq. 5/6) are
// component-wise maxima/minima of event timestamps and do not correspond to
// any single event. Cuts use the same representation and the same comparison
// operators, so VC serves both roles.
package vclock

import (
	"fmt"
	"strconv"
)

// VC is a vector clock over a fixed number of processes. The zero-length VC is
// valid and compares as concurrent with everything non-empty of its own size
// only; operations on VCs of differing lengths panic, as mixing clock domains
// is always a programming error.
//
// Components are uint32: entry k counts events executed by process k, and
// 2³²−1 events per process outlasts any detection run by orders of magnitude
// (a process ticking 10⁶ events/second overflows after ~71 minutes only at
// 10⁹ events/second — real predicate-bearing event rates are far lower, and
// detector deployments are bounded-duration). Width is the dominant cost of
// the algorithm at scale — every hot-path structure and comparison streams
// whole clocks of n components — so halving the component narrows the
// memory footprint and bandwidth of the entire detection pipeline. The v1
// wire format keeps its fixed 8-byte component field for compatibility;
// codecs reject inbound components that no longer fit.
type VC []uint32

// New returns a zeroed vector clock for an n-process system.
func New(n int) VC {
	if n <= 0 {
		panic(fmt.Sprintf("vclock: invalid system size %d", n))
	}
	return make(VC, n)
}

// Of builds a VC from literal components; convenient in tests and examples.
func Of(components ...uint32) VC {
	v := make(VC, len(components))
	copy(v, components)
	return v
}

// Len returns the number of processes the clock covers.
func (v VC) Len() int { return len(v) }

// Clone returns an independent copy of v.
func (v VC) Clone() VC {
	c := make(VC, len(v))
	copy(c, v)
	return c
}

// CopyFrom overwrites v with u. The lengths must match.
func (v VC) CopyFrom(u VC) {
	v.check(u)
	copy(v, u)
}

// Tick increments the local component i, announcing one new event at process
// i. It implements vector-clock update rules 1 and 2 (internal/send events).
func (v VC) Tick(i int) {
	v[i]++
}

// Ticked returns a copy of v with component i incremented, leaving v intact.
func (v VC) Ticked(i int) VC {
	c := v.Clone()
	c.Tick(i)
	return c
}

// MergeMax sets v to the component-wise maximum of v and u — the receive-side
// half of vector-clock update rule 3. The caller is responsible for the
// subsequent Tick of the local component.
func (v VC) MergeMax(u VC) {
	v.check(u)
	for k := range v {
		if u[k] > v[k] {
			v[k] = u[k]
		}
	}
}

// MergeMin sets v to the component-wise minimum of v and u. This is the
// operation the aggregation function ⊓ applies to interval upper bounds
// (paper Eq. 6).
func (v VC) MergeMin(u VC) {
	v.check(u)
	for k := range v {
		if u[k] < v[k] {
			v[k] = u[k]
		}
	}
}

// Max returns a fresh VC holding the component-wise maximum of the operands.
// With no operands it returns nil.
func Max(vs ...VC) VC {
	if len(vs) == 0 {
		return nil
	}
	out := vs[0].Clone()
	for _, u := range vs[1:] {
		out.MergeMax(u)
	}
	return out
}

// Min returns a fresh VC holding the component-wise minimum of the operands.
// With no operands it returns nil.
func Min(vs ...VC) VC {
	if len(vs) == 0 {
		return nil
	}
	out := vs[0].Clone()
	for _, u := range vs[1:] {
		out.MergeMin(u)
	}
	return out
}

// Ordering is the result of comparing two vector clocks.
type Ordering int

const (
	// Before means the receiver causally precedes the argument (v < u).
	Before Ordering = iota
	// Equal means the clocks are identical.
	Equal
	// After means the argument causally precedes the receiver (u < v).
	After
	// Concurrent means neither clock precedes the other.
	Concurrent
)

// String implements fmt.Stringer for Ordering.
func (o Ordering) String() string {
	switch o {
	case Before:
		return "before"
	case Equal:
		return "equal"
	case After:
		return "after"
	case Concurrent:
		return "concurrent"
	default:
		return fmt.Sprintf("Ordering(%d)", int(o))
	}
}

// Compare classifies the causal relation between v and u in a single pass.
func (v VC) Compare(u VC) Ordering {
	v.check(u)
	less, greater := false, false
	for k := range v {
		switch {
		case v[k] < u[k]:
			less = true
		case v[k] > u[k]:
			greater = true
		}
		if less && greater {
			return Concurrent
		}
	}
	switch {
	case less:
		return Before
	case greater:
		return After
	default:
		return Equal
	}
}

// Less reports v < u: every component of v is ≤ the corresponding component
// of u and at least one is strictly smaller. This is the timestamp image of
// Lamport's happens-before relation, and the comparison written "min(x) <
// max(y)" throughout the paper.
func (v VC) Less(u VC) bool {
	v.check(u)
	strict := false
	for k := range v {
		if v[k] > u[k] {
			return false
		}
		if v[k] < u[k] {
			strict = true
		}
	}
	return strict
}

// CompareLess evaluates the two Less comparisons of the pairwise Definitely
// condition — aLob = (aLo < bHi) and bLoa = (bLo < aHi) — in one fused pass
// over the component index. The elimination loop and Overlap run exactly this
// pair on every head-to-head check; the common verdict at a detecting node is
// "both true" (Eq. 2 overlap), which no early exit can shortcut — every
// component must be inspected — so on amd64 with AVX2 the pass runs a
// vectorized kernel (compare_amd64.s) at four components per step. Elsewhere,
// and below the vector break-even width, it runs the fused scalar loop, which
// keeps the early exits: each comparison settles to false the moment a
// component exceeds its counterpart, and the loop stops once both are
// settled. Both paths compute the identical pure function of the operands.
func CompareLess(aLo, bHi, bLo, aHi VC) (aLob, bLoa bool) {
	aLo.check(bHi)
	bLo.check(aHi)
	aLo.check(bLo)
	return compareLessImpl(aLo, bHi, bLo, aHi)
}

// compareLessScalar is the portable fused comparison loop: the non-amd64
// implementation, the short-clock fast path, and the differential-test oracle
// for the vector kernel.
func compareLessScalar(aLo, bHi, bLo, aHi VC) (aLob, bLoa bool) {
	// Main loop: both comparisons still alive. The moment one resolves to
	// false, fall back to a plain single-comparison tail for the other.
	var strictA, strictB bool
	for k := range aLo {
		a, b, c, d := aLo[k], bHi[k], bLo[k], aHi[k]
		if a > b {
			return false, lessFrom(bLo, aHi, k, strictB)
		}
		if c > d {
			return lessFrom(aLo, bHi, k, strictA), false
		}
		strictA = strictA || a != b
		strictB = strictB || c != d
	}
	return strictA, strictB
}

// lessFrom finishes one Less comparison from component k, with the
// strictness evidence accumulated so far.
func lessFrom(v, u VC, k int, strict bool) bool {
	for ; k < len(v); k++ {
		if v[k] > u[k] {
			return false
		}
		strict = strict || v[k] != u[k]
	}
	return strict
}

// LessEq reports v ≤ u component-wise (v < u or v == u).
func (v VC) LessEq(u VC) bool {
	v.check(u)
	for k := range v {
		if v[k] > u[k] {
			return false
		}
	}
	return true
}

// Equal reports component-wise equality.
func (v VC) Equal(u VC) bool {
	v.check(u)
	for k := range v {
		if v[k] != u[k] {
			return false
		}
	}
	return true
}

// Concurrent reports that neither clock happens-before the other and they are
// not equal: the events (or cuts) are causally unrelated.
func (v VC) Concurrent(u VC) bool {
	return v.Compare(u) == Concurrent
}

// String renders the clock as "[c0 c1 ... cn-1]". It formats components with
// strconv into a stack-seeded buffer rather than per-component fmt calls:
// Strict-mode panic messages and debug logs render clocks at full system
// size, where the fmt path's per-component interface boxing dominates.
func (v VC) String() string {
	var stack [64]byte
	buf := append(stack[:0], '[')
	for k, c := range v {
		if k > 0 {
			buf = append(buf, ' ')
		}
		buf = strconv.AppendUint(buf, uint64(c), 10)
	}
	buf = append(buf, ']')
	return string(buf)
}

func (v VC) check(u VC) {
	if len(v) != len(u) {
		panic(fmt.Sprintf("vclock: size mismatch %d vs %d", len(v), len(u)))
	}
}
