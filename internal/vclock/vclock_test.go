package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	v := New(5)
	if v.Len() != 5 {
		t.Fatalf("Len = %d, want 5", v.Len())
	}
	for k, c := range v {
		if c != 0 {
			t.Fatalf("component %d = %d, want 0", k, c)
		}
	}
}

func TestNewPanicsOnBadSize(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", n)
				}
			}()
			New(n)
		}()
	}
}

func TestTick(t *testing.T) {
	v := New(3)
	v.Tick(1)
	v.Tick(1)
	v.Tick(2)
	want := Of(0, 2, 1)
	if !v.Equal(want) {
		t.Fatalf("v = %v, want %v", v, want)
	}
}

func TestTickedLeavesOriginal(t *testing.T) {
	v := Of(1, 2, 3)
	u := v.Ticked(0)
	if !v.Equal(Of(1, 2, 3)) {
		t.Fatalf("original mutated: %v", v)
	}
	if !u.Equal(Of(2, 2, 3)) {
		t.Fatalf("ticked copy = %v, want [2 2 3]", u)
	}
}

func TestMergeMax(t *testing.T) {
	v := Of(1, 5, 2)
	v.MergeMax(Of(3, 1, 2))
	if !v.Equal(Of(3, 5, 2)) {
		t.Fatalf("MergeMax = %v", v)
	}
}

func TestMergeMin(t *testing.T) {
	v := Of(1, 5, 2)
	v.MergeMin(Of(3, 1, 2))
	if !v.Equal(Of(1, 1, 2)) {
		t.Fatalf("MergeMin = %v", v)
	}
}

func TestMaxMinVariadic(t *testing.T) {
	a, b, c := Of(1, 9, 0), Of(4, 2, 2), Of(0, 3, 7)
	if got := Max(a, b, c); !got.Equal(Of(4, 9, 7)) {
		t.Errorf("Max = %v", got)
	}
	if got := Min(a, b, c); !got.Equal(Of(0, 2, 0)) {
		t.Errorf("Min = %v", got)
	}
	if Max() != nil || Min() != nil {
		t.Error("Max()/Min() of nothing should be nil")
	}
	// Operands must not be mutated.
	if !a.Equal(Of(1, 9, 0)) || !b.Equal(Of(4, 2, 2)) || !c.Equal(Of(0, 3, 7)) {
		t.Error("variadic Max/Min mutated an operand")
	}
}

func TestCompareTable(t *testing.T) {
	cases := []struct {
		v, u VC
		want Ordering
	}{
		{Of(1, 2), Of(1, 2), Equal},
		{Of(1, 2), Of(1, 3), Before},
		{Of(1, 2), Of(2, 2), Before},
		{Of(2, 2), Of(1, 2), After},
		{Of(1, 2), Of(2, 1), Concurrent},
		{Of(0, 0), Of(0, 0), Equal},
		{Of(3, 0, 1), Of(3, 1, 1), Before},
		{Of(3, 0, 2), Of(3, 1, 1), Concurrent},
	}
	for _, c := range cases {
		if got := c.v.Compare(c.u); got != c.want {
			t.Errorf("%v.Compare(%v) = %v, want %v", c.v, c.u, got, c.want)
		}
	}
}

func TestLessMatchesCompare(t *testing.T) {
	cases := []struct{ v, u VC }{
		{Of(1, 2), Of(1, 2)},
		{Of(1, 2), Of(1, 3)},
		{Of(2, 2), Of(1, 2)},
		{Of(1, 2), Of(2, 1)},
	}
	for _, c := range cases {
		if got, want := c.v.Less(c.u), c.v.Compare(c.u) == Before; got != want {
			t.Errorf("%v.Less(%v) = %v, want %v", c.v, c.u, got, want)
		}
	}
}

func TestSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("comparing clocks of different lengths did not panic")
		}
	}()
	Of(1, 2).Less(Of(1, 2, 3))
}

func TestOrderingString(t *testing.T) {
	if Before.String() != "before" || Concurrent.String() != "concurrent" {
		t.Error("Ordering.String broken")
	}
	if Ordering(42).String() != "Ordering(42)" {
		t.Error("unknown Ordering.String broken")
	}
}

func TestStringFormat(t *testing.T) {
	if got := Of(1, 0, 7).String(); got != "[1 0 7]" {
		t.Errorf("String = %q", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	v := Of(1, 2)
	c := v.Clone()
	c.Tick(0)
	if v[0] != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestCopyFrom(t *testing.T) {
	v := New(3)
	v.CopyFrom(Of(7, 8, 9))
	if !v.Equal(Of(7, 8, 9)) {
		t.Errorf("CopyFrom = %v", v)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	orig := Of(0, 1, 1<<30, 42)
	data, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != WireSize(4) {
		t.Fatalf("encoded size %d, want %d", len(data), WireSize(4))
	}
	var back VC
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(orig) {
		t.Fatalf("round trip %v -> %v", orig, back)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var v VC
	if err := v.UnmarshalBinary(nil); err == nil {
		t.Error("nil buffer accepted")
	}
	if err := v.UnmarshalBinary([]byte{0, 0, 0, 2, 1}); err == nil {
		t.Error("truncated buffer accepted")
	}
}

// --- randomized / property-based tests ---

// randVC draws a clock with small components so that comparisons hit every
// branch (ties, strict orderings, concurrency) frequently.
func randVC(r *rand.Rand, n int) VC {
	v := make(VC, n)
	for k := range v {
		v[k] = uint32(r.Intn(4))
	}
	return v
}

func TestQuickLessIsStrictPartialOrder(t *testing.T) {
	// quick.Check's generators cannot express "three slices of the same
	// random length", so the order-theoretic properties are driven manually
	// from a seeded source.
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		n := 1 + r.Intn(6)
		a, b, c := randVC(r, n), randVC(r, n), randVC(r, n)
		// Irreflexivity.
		if a.Less(a) {
			t.Fatalf("irreflexivity violated: %v < %v", a, a)
		}
		// Asymmetry.
		if a.Less(b) && b.Less(a) {
			t.Fatalf("asymmetry violated: %v, %v", a, b)
		}
		// Transitivity.
		if a.Less(b) && b.Less(c) && !a.Less(c) {
			t.Fatalf("transitivity violated: %v < %v < %v but not %v < %v", a, b, c, a, c)
		}
	}
}

func TestQuickCompareConsistentWithLess(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		n := 1 + r.Intn(6)
		a, b := randVC(r, n), randVC(r, n)
		ord := a.Compare(b)
		if (ord == Before) != a.Less(b) {
			t.Fatalf("Compare/Less disagree for %v vs %v: %v", a, b, ord)
		}
		if (ord == After) != b.Less(a) {
			t.Fatalf("Compare/After disagree for %v vs %v: %v", a, b, ord)
		}
		if (ord == Equal) != a.Equal(b) {
			t.Fatalf("Compare/Equal disagree for %v vs %v: %v", a, b, ord)
		}
		if (ord == Concurrent) != (a.Concurrent(b)) {
			t.Fatalf("Compare/Concurrent disagree for %v vs %v: %v", a, b, ord)
		}
		if got := b.Compare(a); !dual(ord, got) {
			t.Fatalf("Compare not antisymmetric: %v vs %v: %v then %v", a, b, ord, got)
		}
	}
}

func dual(a, b Ordering) bool {
	switch a {
	case Before:
		return b == After
	case After:
		return b == Before
	default:
		return a == b
	}
}

func TestQuickLatticeProperties(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		n := 1 + r.Intn(6)
		a, b := randVC(r, n), randVC(r, n)
		mx, mn := Max(a, b), Min(a, b)
		// Max is the least upper bound, Min the greatest lower bound.
		if !a.LessEq(mx) || !b.LessEq(mx) {
			t.Fatalf("Max(%v,%v)=%v is not an upper bound", a, b, mx)
		}
		if !mn.LessEq(a) || !mn.LessEq(b) {
			t.Fatalf("Min(%v,%v)=%v is not a lower bound", a, b, mn)
		}
		// Commutativity and idempotence.
		if !Max(b, a).Equal(mx) || !Min(b, a).Equal(mn) {
			t.Fatal("Max/Min not commutative")
		}
		if !Max(a, a).Equal(a) || !Min(a, a).Equal(a) {
			t.Fatal("Max/Min not idempotent")
		}
		// Absorption: Max(a, Min(a,b)) == a.
		if !Max(a, mn).Equal(a) || !Min(a, mx).Equal(a) {
			t.Fatal("absorption law violated")
		}
	}
}

func TestQuickMarshalRoundTrip(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			raw = []uint32{0}
		}
		v := VC(raw)
		data, err := v.MarshalBinary()
		if err != nil {
			return false
		}
		var back VC
		if err := back.UnmarshalBinary(data); err != nil {
			return false
		}
		return back.Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
