// Package viz renders executions as ASCII timing diagrams in the style of
// the paper's Figures 2(b) and 3(a): one row per process with the
// local-predicate intervals drawn as filled blocks over that process's local
// event timeline. It exists for debugging and documentation — seeing why a
// round did or did not produce a detection is much faster on a picture.
//
// The x axis is each process's own event counter (the process's component of
// the interval bounds), scaled to the requested width. Rows are therefore
// exact per process and only approximately aligned across processes — the
// honest rendering for an asynchronous execution without global time.
package viz

import (
	"fmt"
	"strings"

	"hierdet/internal/workload"
)

// Timeline renders the execution's interval structure, width columns wide.
// When the execution carries round ground truth, a legend row marks each
// round: G for global pulses, g for group pulses, · for isolated rounds.
func Timeline(e *workload.Execution, width int) string {
	if width < 10 {
		width = 10
	}
	var b strings.Builder

	// Scale: the largest local event count across processes.
	maxEvents := uint32(1)
	for _, stream := range e.Streams {
		if n := len(stream); n > 0 {
			last := stream[n-1]
			if own := last.Hi[last.Origin]; own > maxEvents {
				maxEvents = own
			}
		}
	}
	col := func(event uint32) int {
		c := int(uint64(event) * uint64(width-1) / uint64(maxEvents))
		if c >= width {
			c = width - 1
		}
		return c
	}

	for p, stream := range e.Streams {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		for _, iv := range stream {
			lo, hi := col(iv.Lo[p]), col(iv.Hi[p])
			for c := lo; c <= hi; c++ {
				row[c] = '#'
			}
		}
		fmt.Fprintf(&b, "P%-3d |%s| %d intervals\n", p, string(row), len(stream))
	}

	if len(e.Rounds) > 0 {
		var legend strings.Builder
		for _, r := range e.Rounds {
			switch r.Kind {
			case workload.Global:
				legend.WriteByte('G')
			case workload.Group:
				legend.WriteByte('g')
			case workload.Subset:
				legend.WriteByte('s')
			default:
				legend.WriteByte('.')
			}
		}
		fmt.Fprintf(&b, "rounds: %s  (G global pulse, g group pulse, s subset pulse, . isolated)\n", legend.String())
	}
	return b.String()
}

// Describe summarizes an execution in one line.
func Describe(e *workload.Execution) string {
	global, group, isolated := 0, 0, 0
	for _, r := range e.Rounds {
		switch r.Kind {
		case workload.Global:
			global++
		case workload.Group:
			group++
		default:
			isolated++
		}
	}
	return fmt.Sprintf("%d processes, %d intervals, rounds: %d global / %d group / %d isolated",
		e.N, e.TotalIntervals(), global, group, isolated)
}
