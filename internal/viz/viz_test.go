package viz

import (
	"strings"
	"testing"

	"hierdet/internal/tree"
	"hierdet/internal/workload"
)

func TestTimelineShape(t *testing.T) {
	tp := tree.Balanced(2, 1) // 3 processes
	e := workload.Generate(workload.Config{Topology: tp, Rounds: 4, Seed: 1, PGlobal: 0.5})
	out := Timeline(e, 60)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// 3 process rows + 1 round legend.
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	for p := 0; p < 3; p++ {
		if !strings.HasPrefix(lines[p], "P") {
			t.Fatalf("row %d missing process prefix: %q", p, lines[p])
		}
		if !strings.Contains(lines[p], "#") {
			t.Fatalf("row %d has no interval blocks: %q", p, lines[p])
		}
		if !strings.Contains(lines[p], "4 intervals") {
			t.Fatalf("row %d missing interval count: %q", p, lines[p])
		}
	}
	if !strings.HasPrefix(lines[3], "rounds: ") {
		t.Fatalf("legend missing: %q", lines[3])
	}
	// Legend has one marker per round.
	legend := strings.Fields(strings.TrimPrefix(lines[3], "rounds: "))[0]
	if len(legend) != 4 {
		t.Fatalf("legend %q, want 4 markers", legend)
	}
}

func TestTimelineIntervalCountMatchesBlocks(t *testing.T) {
	tp := tree.Balanced(2, 1)
	e := workload.Generate(workload.Config{Topology: tp, Rounds: 3, Seed: 2}) // isolated only
	out := Timeline(e, 80)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "P") {
			continue
		}
		// Three disjoint intervals → at least three separate block groups.
		inner := line[strings.Index(line, "|")+1 : strings.LastIndex(line, "|")]
		groups := 0
		inBlock := false
		for _, c := range inner {
			if c == '#' && !inBlock {
				groups++
				inBlock = true
			} else if c != '#' {
				inBlock = false
			}
		}
		if groups != 3 {
			t.Fatalf("blocks = %d, want 3 disjoint: %q", groups, line)
		}
	}
}

func TestTimelineMinWidth(t *testing.T) {
	tp := tree.Balanced(2, 1)
	e := workload.Generate(workload.Config{Topology: tp, Rounds: 1, Seed: 3, PGlobal: 1})
	out := Timeline(e, 0) // clamped to 10
	if !strings.Contains(out, "|") {
		t.Fatal("no frame rendered")
	}
}

func TestTimelineChaoticNoRounds(t *testing.T) {
	e := workload.GenerateChaotic(workload.ChaoticConfig{N: 3, Steps: 100, Seed: 4})
	out := Timeline(e, 40)
	if strings.Contains(out, "rounds:") {
		t.Fatal("chaotic execution should have no round legend")
	}
}

func TestDescribe(t *testing.T) {
	tp := tree.Balanced(2, 1)
	e := workload.Generate(workload.Config{Topology: tp, Rounds: 6, Seed: 5, PGlobal: 1})
	d := Describe(e)
	if !strings.Contains(d, "3 processes") || !strings.Contains(d, "6 global") {
		t.Fatalf("Describe = %q", d)
	}
}
