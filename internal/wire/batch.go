package wire

// Report-batch frames: one wire frame carrying a whole batch window's worth
// of child→parent reports. The batched runtimes (livenet with
// Config.BatchWindow, mirroring the simulator's) flush each node's window as
// one message; this frame is its wire form.
//
// Layout:
//
//	batch := magic u8 | verV2 u8 | kind u8 (KindReportBatch) | flags u8 (0) |
//	         count uv | (size uv | reportV2)[count]
//
// Each element is a complete, length-prefixed v2 report frame. The first
// report's Lo is absolute; every later report is delta-chained against its
// predecessor's Hi *inside the frame* — successive reports of one window sit
// on the same near-monotone stream (Theorem 2 succession), so the chaining
// wins the same bytes per-connection delta chaining does, but the frame
// stays fully self-contained: no stream basis, no connection state, safe
// through any transport (the TCP transport's rebaser only touches
// single-report frames and passes batches through untouched).
//
// Batch frames are v2-only. A v1 receiver has never seen KindReportBatch and
// rejects the frame as corrupt, which is the correct rollout behaviour: a
// mixed-version deployment simply keeps batch windows off.

import (
	"encoding/binary"
	"fmt"

	"hierdet/internal/repair"
	"hierdet/internal/vclock"
)

// AppendReportBatch appends the batch frame encoding of reps to dst and
// returns the extended buffer. It operates on repair.Report — the type the
// runtimes buffer windows in — so a flush encodes straight out of the window
// buffer; it allocates only when dst lacks capacity, which is what makes the
// pooled-buffer flush path allocation-free. Panics on an empty batch (a
// flush with nothing to flush is a caller bug).
func AppendReportBatch(dst []byte, reps []repair.Report) []byte {
	if len(reps) == 0 {
		panic("wire: empty report batch")
	}
	dst = append(dst, magic, verV2, KindReportBatch, 0)
	dst = binary.AppendUvarint(dst, uint64(len(reps)))
	var basis vclock.VC
	for _, pl := range reps {
		r := Report{Iv: pl.Iv, LinkSeq: pl.LinkSeq, Epoch: pl.Epoch}
		dst = binary.AppendUvarint(dst, uint64(ReportSizeV2(r, basis)))
		dst = AppendReportV2(dst, r, basis)
		basis = pl.Iv.Hi
	}
	return dst
}

// ReportBatchSize returns the exact encoded size in bytes of the batch frame
// for reps — the byte-volume experiments' counterpart of ReportSizeV2.
func ReportBatchSize(reps []repair.Report) int {
	size := 4 + uvarintLen(uint64(len(reps)))
	var basis vclock.VC
	for _, pl := range reps {
		r := Report{Iv: pl.Iv, LinkSeq: pl.LinkSeq, Epoch: pl.Epoch}
		n := ReportSizeV2(r, basis)
		size += uvarintLen(uint64(n)) + n
		basis = pl.Iv.Hi
	}
	return size
}

// DecodeReportBatch parses a batch frame into fresh storage, in window
// order. Every decode error wraps ErrCorrupt or ErrTruncated, like the rest
// of the package.
func DecodeReportBatch(data []byte) ([]repair.Report, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("wire: batch header: %w", ErrTruncated)
	}
	if data[0] != magic || data[1] != verV2 || data[2] != KindReportBatch {
		return nil, fmt.Errorf("wire: not a report-batch frame: %w", ErrCorrupt)
	}
	if data[3] != 0 {
		return nil, fmt.Errorf("wire: batch flags 0x%02x: %w", data[3], ErrCorrupt)
	}
	rest := data[4:]
	count, sz := binary.Uvarint(rest)
	if sz <= 0 {
		return nil, uvarintFieldErr(sz)
	}
	rest = rest[sz:]
	if count == 0 {
		return nil, fmt.Errorf("wire: empty report batch: %w", ErrCorrupt)
	}
	// Every element costs at least its length prefix plus a report header,
	// so a count the remaining bytes cannot back is corrupt, not just big —
	// reject it before allocating the result.
	if count > uint64(len(rest)) {
		return nil, fmt.Errorf("wire: batch of %d reports in %d bytes: %w", count, len(rest), ErrCorrupt)
	}
	out := make([]repair.Report, 0, count)
	var basis vclock.VC
	for i := uint64(0); i < count; i++ {
		n, sz := binary.Uvarint(rest)
		if sz <= 0 {
			return nil, uvarintFieldErr(sz)
		}
		rest = rest[sz:]
		if n > uint64(len(rest)) {
			return nil, fmt.Errorf("wire: batch element %d of %d bytes, %d left: %w", i, n, len(rest), ErrTruncated)
		}
		var r Report
		if err := DecodeReportInto(rest[:n], &r, basis); err != nil {
			return nil, fmt.Errorf("wire: batch element %d: %w", i, err)
		}
		out = append(out, repair.Report{Iv: r.Iv, LinkSeq: r.LinkSeq, Epoch: r.Epoch})
		basis = r.Iv.Hi
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after batch: %w", len(rest), ErrCorrupt)
	}
	return out, nil
}
