package wire

import (
	"errors"
	"testing"

	"hierdet/internal/repair"
	"hierdet/internal/vclock"
)

// windowReports builds a plausible batch window: n successive reports of one
// stream, near-monotone clocks, consecutive link sequence numbers.
func windowReports(n int) []repair.Report {
	out := make([]repair.Report, 0, n)
	lo := []uint32{100, 200, 300, 400}
	for i := 0; i < n; i++ {
		hi := []uint32{lo[0] + 3, lo[1] + 1, lo[2] + 4, lo[3] + 2}
		r := v2Report(2, i, i, 1, vclock.Of(lo...), vclock.Of(hi...))
		out = append(out, repair.Report{Iv: r.Iv, LinkSeq: r.LinkSeq, Epoch: r.Epoch})
		lo = []uint32{hi[0] + 2, hi[1] + 5, hi[2] + 1, hi[3] + 3}
	}
	return out
}

func TestReportBatchRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64} {
		reps := windowReports(n)
		data := AppendReportBatch(nil, reps)
		if len(data) != ReportBatchSize(reps) {
			t.Fatalf("n=%d: encoded %d bytes, ReportBatchSize says %d", n, len(data), ReportBatchSize(reps))
		}
		if k, err := FrameKind(data); err != nil || k != KindReportBatch {
			t.Fatalf("n=%d: FrameKind = %d, %v", n, k, err)
		}
		if ver, err := FrameVersion(data); err != nil || ver != Version2 {
			t.Fatalf("n=%d: FrameVersion = %d, %v", n, ver, err)
		}
		// Batch frames are self-contained: the intra-frame delta chain must
		// not look like connection-scoped state to a transport.
		if IsReportV2(data) || ReportIsDelta(data) {
			t.Fatalf("n=%d: batch frame classified as a single v2 report", n)
		}
		back, err := DecodeReportBatch(data)
		if err != nil {
			t.Fatal(err)
		}
		if len(back) != n {
			t.Fatalf("decoded %d reports, want %d", len(back), n)
		}
		for i := range back {
			sameReport(t, Report{Iv: back[i].Iv, LinkSeq: back[i].LinkSeq, Epoch: back[i].Epoch},
				Report{Iv: reps[i].Iv, LinkSeq: reps[i].LinkSeq, Epoch: reps[i].Epoch}, "batch element")
		}
	}
}

// TestReportBatchChainingWins: a batch of near-monotone reports must cost
// less on the wire than the same reports as separate absolute frames — the
// intra-frame delta chain is the point of the format.
func TestReportBatchChainingWins(t *testing.T) {
	reps := windowReports(16)
	separate := 0
	for _, pl := range reps {
		separate += len(EncodeReportV2(Report{Iv: pl.Iv, LinkSeq: pl.LinkSeq, Epoch: pl.Epoch}))
	}
	if batched := len(AppendReportBatch(nil, reps)); batched >= separate {
		t.Fatalf("batch frame %d bytes >= %d as separate absolute frames", batched, separate)
	}
}

func TestReportBatchRejectsCorruption(t *testing.T) {
	good := AppendReportBatch(nil, windowReports(3))
	cases := map[string]struct {
		mutate func([]byte) []byte
		want   error
	}{
		"empty":          {func(b []byte) []byte { return b[:0] }, ErrTruncated},
		"header-cut":     {func(b []byte) []byte { return b[:3] }, ErrTruncated},
		"bad-magic":      {func(b []byte) []byte { b[0] = 0x00; return b }, ErrCorrupt},
		"v1-position":    {func(b []byte) []byte { b[1] = KindReportBatch; return b[:20] }, ErrCorrupt},
		"bad-flags":      {func(b []byte) []byte { b[3] = 0xff; return b }, ErrCorrupt},
		"zero-count":     {func(b []byte) []byte { b[4] = 0; return b }, ErrCorrupt},
		"huge-count":     {func(b []byte) []byte { b[4] = 0x7f; return b }, ErrCorrupt},
		"element-cut":    {func(b []byte) []byte { return b[:len(b)-5] }, ErrTruncated},
		"trailing-bytes": {func(b []byte) []byte { return append(b, 0xaa) }, ErrCorrupt},
	}
	for name, tc := range cases {
		data := tc.mutate(append([]byte(nil), good...))
		if _, err := DecodeReportBatch(data); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", name, err, tc.want)
		}
	}
	// And the generic kind dispatch refuses a batch kind in the v1 slot.
	if _, err := FrameKind([]byte{magic, KindReportBatch, 0}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("FrameKind accepted v1-framed batch kind: %v", err)
	}
}

func TestAppendReportBatchPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty batch did not panic")
		}
	}()
	AppendReportBatch(nil, nil)
}

func FuzzDecodeReportBatch(f *testing.F) {
	f.Add(AppendReportBatch(nil, windowReports(1)))
	f.Add(AppendReportBatch(nil, windowReports(5)))
	f.Add([]byte{magic, verV2, KindReportBatch, 0, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		reps, err := DecodeReportBatch(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// Whatever decodes must re-encode to a decodable frame of the same
		// length (canonical encoding).
		again := AppendReportBatch(nil, reps)
		if _, err := DecodeReportBatch(again); err != nil {
			t.Fatalf("re-encode of decoded batch does not decode: %v", err)
		}
	})
}

// BenchmarkAppendReportBatch is the batched report encode path the scale
// work promises 0 allocs/op on: a window's flush through a pooled buffer.
func BenchmarkAppendReportBatch(b *testing.B) {
	reps := windowReports(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := GetBuffer()
		*buf = AppendReportBatch(*buf, reps)
		PutBuffer(buf)
	}
}

// BenchmarkDecodeReportBatch measures the receive side for comparison.
func BenchmarkDecodeReportBatch(b *testing.B) {
	data := AppendReportBatch(nil, windowReports(16))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeReportBatch(data); err != nil {
			b.Fatal(err)
		}
	}
}
