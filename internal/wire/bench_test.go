package wire

import (
	"testing"

	"hierdet/internal/interval"
	"hierdet/internal/repair"
	"hierdet/internal/vclock"
)

// The encode/decode benchmarks anchor the transport's perf trajectory: every
// report a TCP deployment ships pays one encode at the sender and one decode
// at the receiver, so codec regressions surface here before they show up as
// cluster throughput.

func benchReport(n int) Report {
	lo := make(vclock.VC, n)
	hi := make(vclock.VC, n)
	for i := range lo {
		lo[i] = uint32(i)
		hi[i] = uint32(i + 10)
	}
	span := make([]int, n/2)
	for i := range span {
		span[i] = i
	}
	iv := interval.New(1, 3, lo, hi)
	iv.Agg = true
	iv.Span = span
	return Report{Iv: iv, LinkSeq: 5, Epoch: 2}
}

func BenchmarkEncodeReport(b *testing.B) {
	r := benchReport(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeReport(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeReport(b *testing.B) {
	data, err := EncodeReport(benchReport(64))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeReport(data); err != nil {
			b.Fatal(err)
		}
	}
}

// The pooled/v2 benchmarks track the tentpole claims directly: bytes/frame
// for the delta codec against v1's fixed width, and zero allocations per
// frame in steady state on the pooled encode and decode-into paths.

func BenchmarkEncodeReportPooled(b *testing.B) {
	r := benchReport(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := GetBuffer()
		*buf = AppendReportV2(*buf, r, nil)
		PutBuffer(buf)
	}
}

// benchReportSteady is a report from deep in a long run — clock components in
// the millions, the regime where v1's fixed 8-byte components waste the most
// and a near-monotone basis compresses Lo to a byte or two per component.
func benchReportSteady(n int) (Report, vclock.VC) {
	r := benchReport(n)
	for i := range r.Iv.Lo {
		r.Iv.Lo[i] += 1 << 21
		r.Iv.Hi[i] += 1 << 21
	}
	basis := r.Iv.Lo.Clone()
	for i := range basis {
		basis[i] -= 2 // previous Hi just below this Lo
	}
	return r, basis
}

func BenchmarkEncodeReportV2(b *testing.B) {
	r, basis := benchReportSteady(64)
	b.Run("absolute", func(b *testing.B) {
		b.ReportAllocs()
		var frame []byte
		for i := 0; i < b.N; i++ {
			frame = AppendReportV2(frame[:0], r, nil)
		}
		b.ReportMetric(float64(len(frame)), "bytes/frame")
	})
	b.Run("delta", func(b *testing.B) {
		b.ReportAllocs()
		var frame []byte
		for i := 0; i < b.N; i++ {
			frame = AppendReportV2(frame[:0], r, basis)
		}
		b.ReportMetric(float64(len(frame)), "bytes/frame")
	})
	b.Run("v1", func(b *testing.B) {
		b.ReportAllocs()
		var n int
		for i := 0; i < b.N; i++ {
			frame, err := EncodeReport(r)
			if err != nil {
				b.Fatal(err)
			}
			n = len(frame)
		}
		b.ReportMetric(float64(n), "bytes/frame")
	})
}

func BenchmarkDecodeReportPooled(b *testing.B) {
	r, basis := benchReportSteady(64)
	v1, err := EncodeReport(r)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name  string
		data  []byte
		basis vclock.VC
	}{
		{"v1", v1, nil},
		{"v2-absolute", EncodeReportV2(r), nil},
		{"v2-delta", AppendReportV2(nil, r, basis), basis},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var into Report
			if err := DecodeReportInto(c.data, &into, c.basis); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(c.data)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := DecodeReportInto(c.data, &into, c.basis); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEncodeHeartbeat(b *testing.B) {
	hb := Heartbeat{Sender: 3, Epoch: 9, RootSeeking: true, Covered: []int{3, 4, 5, 6, 7, 8, 9}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeHeartbeat(hb)
	}
}

func BenchmarkDecodeHeartbeat(b *testing.B) {
	data := EncodeHeartbeat(Heartbeat{Sender: 3, Epoch: 9, Covered: []int{3, 4, 5, 6, 7, 8, 9}})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeHeartbeat(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeAttach(b *testing.B) {
	a := Attach{From: 4, Msg: repair.Msg{Type: repair.Req, ReqID: 11, Covered: []int{4, 9, 10}}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeAttach(a)
	}
}

func BenchmarkDecodeAttach(b *testing.B) {
	data := EncodeAttach(Attach{From: 4, Msg: repair.Msg{Type: repair.Req, ReqID: 11, Covered: []int{4, 9, 10}}})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeAttach(data); err != nil {
			b.Fatal(err)
		}
	}
}
