package wire

import (
	"testing"

	"hierdet/internal/interval"
	"hierdet/internal/repair"
	"hierdet/internal/vclock"
)

// The encode/decode benchmarks anchor the transport's perf trajectory: every
// report a TCP deployment ships pays one encode at the sender and one decode
// at the receiver, so codec regressions surface here before they show up as
// cluster throughput.

func benchReport(n int) Report {
	lo := make(vclock.VC, n)
	hi := make(vclock.VC, n)
	for i := range lo {
		lo[i] = uint64(i)
		hi[i] = uint64(i + 10)
	}
	span := make([]int, n/2)
	for i := range span {
		span[i] = i
	}
	iv := interval.New(1, 3, lo, hi)
	iv.Agg = true
	iv.Span = span
	return Report{Iv: iv, LinkSeq: 5, Epoch: 2}
}

func BenchmarkEncodeReport(b *testing.B) {
	r := benchReport(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeReport(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeReport(b *testing.B) {
	data, err := EncodeReport(benchReport(64))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeReport(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeHeartbeat(b *testing.B) {
	hb := Heartbeat{Sender: 3, Epoch: 9, RootSeeking: true, Covered: []int{3, 4, 5, 6, 7, 8, 9}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeHeartbeat(hb)
	}
}

func BenchmarkDecodeHeartbeat(b *testing.B) {
	data := EncodeHeartbeat(Heartbeat{Sender: 3, Epoch: 9, Covered: []int{3, 4, 5, 6, 7, 8, 9}})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeHeartbeat(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeAttach(b *testing.B) {
	a := Attach{From: 4, Msg: repair.Msg{Type: repair.Req, ReqID: 11, Covered: []int{4, 9, 10}}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeAttach(a)
	}
}

func BenchmarkDecodeAttach(b *testing.B) {
	data := EncodeAttach(Attach{From: 4, Msg: repair.Msg{Type: repair.Req, ReqID: 11, Covered: []int{4, 9, 10}}})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeAttach(data); err != nil {
			b.Fatal(err)
		}
	}
}
