package wire

import (
	"encoding/binary"
	"fmt"

	"hierdet/internal/vclock"
)

// Differential vector-clock encoding (the Singhal–Kshemkalyani technique,
// described in the authors' textbook, reference [4] of the paper): instead
// of the full n-component clock, a sender transmits only the components that
// changed since the previous clock it sent *on the same link*, as
// (index, value) pairs. Both ends keep the link's last clock; the decoder
// patches its copy. The savings attack exactly the O(n) message-size factor
// the paper's complexity analysis highlights — an interval report carries
// two clocks, so links whose traffic only reflects local subtree activity
// (group rounds) shrink the most.
//
// The technique requires the link to be FIFO and lossless; the monitor
// enforces FIFO mode when differential accounting is enabled.
//
// Frame layout (big endian): n u32 | count u32 | (index u32, value u64)^count.
// The value field stays 8 bytes for frame-format stability even though clock
// components are uint32 in memory; the decoder rejects oversized values.

// DiffEncoder encodes successive clocks for one direction of one link.
type DiffEncoder struct {
	prev vclock.VC
}

// Encode emits the delta frame for v and updates the link state.
func (e *DiffEncoder) Encode(v vclock.VC) []byte {
	n := v.Len()
	var changed []int
	for i := 0; i < n; i++ {
		if e.prev == nil || e.prev[i] != v[i] {
			changed = append(changed, i)
		}
	}
	buf := make([]byte, 0, 8+12*len(changed))
	buf = binary.BigEndian.AppendUint32(buf, uint32(n))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(changed)))
	for _, i := range changed {
		buf = binary.BigEndian.AppendUint32(buf, uint32(i))
		buf = binary.BigEndian.AppendUint64(buf, uint64(v[i]))
	}
	if e.prev == nil {
		e.prev = v.Clone()
	} else {
		e.prev.CopyFrom(v)
	}
	return buf
}

// DiffDecoder decodes the frames produced by the peer's DiffEncoder.
type DiffDecoder struct {
	prev vclock.VC
}

// Decode patches the link state with a delta frame and returns the clock.
func (d *DiffDecoder) Decode(data []byte) (vclock.VC, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("wire: short diff frame (%d bytes)", len(data))
	}
	n := int(binary.BigEndian.Uint32(data))
	count := int(binary.BigEndian.Uint32(data[4:]))
	if n <= 0 || count < 0 || count > n {
		return nil, fmt.Errorf("wire: diff frame claims n=%d count=%d", n, count)
	}
	if len(data) != 8+12*count {
		return nil, fmt.Errorf("wire: diff frame size %d, want %d", len(data), 8+12*count)
	}
	if d.prev == nil {
		d.prev = vclock.New(n)
	}
	if d.prev.Len() != n {
		return nil, fmt.Errorf("wire: diff frame for %d processes on a %d-process link", n, d.prev.Len())
	}
	for k := 0; k < count; k++ {
		idx := int(binary.BigEndian.Uint32(data[8+12*k:]))
		if idx < 0 || idx >= n {
			return nil, fmt.Errorf("wire: diff frame component %d out of range", idx)
		}
		val := binary.BigEndian.Uint64(data[8+12*k+4:])
		if val > 1<<32-1 {
			return nil, fmt.Errorf("wire: diff frame component %d value %d exceeds the uint32 clock domain", idx, val)
		}
		d.prev[idx] = uint32(val)
	}
	return d.prev.Clone(), nil
}

// DiffSize returns the encoded size of a delta carrying the given number of
// changed components.
func DiffSize(changed int) int { return 8 + 12*changed }

// ChangedComponents counts the components that differ between two clocks
// (all of cur when prev is nil) — the cost driver of the differential
// encoding, used by the byte-accounting ablation.
func ChangedComponents(prev, cur vclock.VC) int {
	if prev == nil {
		return cur.Len()
	}
	changed := 0
	for i := range cur {
		if prev[i] != cur[i] {
			changed++
		}
	}
	return changed
}
