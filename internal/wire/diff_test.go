package wire

import (
	"math/rand"
	"testing"

	"hierdet/internal/vclock"
)

func TestDiffRoundTripSequence(t *testing.T) {
	enc := &DiffEncoder{}
	dec := &DiffDecoder{}
	clocks := []vclock.VC{
		vclock.Of(1, 0, 0, 0),
		vclock.Of(2, 0, 0, 0),
		vclock.Of(3, 5, 0, 0),
		vclock.Of(3, 5, 0, 0), // no change at all
		vclock.Of(9, 9, 9, 9),
	}
	for i, v := range clocks {
		frame := enc.Encode(v)
		got, err := dec.Decode(frame)
		if err != nil {
			t.Fatalf("clock %d: %v", i, err)
		}
		if !got.Equal(v) {
			t.Fatalf("clock %d: decoded %v, want %v", i, got, v)
		}
	}
}

func TestDiffSizes(t *testing.T) {
	enc := &DiffEncoder{}
	// First frame carries everything.
	if got := len(enc.Encode(vclock.Of(1, 2, 3, 4))); got != DiffSize(4) {
		t.Fatalf("first frame %d bytes, want %d", got, DiffSize(4))
	}
	// One changed component → one pair.
	if got := len(enc.Encode(vclock.Of(1, 2, 3, 5))); got != DiffSize(1) {
		t.Fatalf("delta frame %d bytes, want %d", got, DiffSize(1))
	}
	// No change → header only.
	if got := len(enc.Encode(vclock.Of(1, 2, 3, 5))); got != DiffSize(0) {
		t.Fatalf("empty delta %d bytes, want %d", got, DiffSize(0))
	}
}

func TestDiffRandomSequences(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(12)
		enc := &DiffEncoder{}
		dec := &DiffDecoder{}
		cur := make(vclock.VC, n)
		for step := 0; step < 50; step++ {
			// Monotone growth in a random subset of components, like real
			// clock sequences on a link.
			for i := range cur {
				if r.Intn(3) == 0 {
					cur[i] += uint32(1 + r.Intn(4))
				}
			}
			got, err := dec.Decode(enc.Encode(cur))
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(cur) {
				t.Fatalf("trial %d step %d: %v != %v", trial, step, got, cur)
			}
		}
	}
}

func TestDiffDecodeRejectsCorruption(t *testing.T) {
	enc := &DiffEncoder{}
	frame := enc.Encode(vclock.Of(1, 2))
	cases := map[string][]byte{
		"short":      frame[:4],
		"bad-count":  {0, 0, 0, 2, 0, 0, 0, 9},
		"truncated":  frame[:len(frame)-2],
		"bad-index":  {0, 0, 0, 2, 0, 0, 0, 1, 0, 0, 0, 7, 0, 0, 0, 0, 0, 0, 0, 1},
		"wrong-size": append(append([]byte{}, frame...), 1, 2, 3),
	}
	for name, c := range cases {
		dec := &DiffDecoder{}
		if _, err := dec.Decode(c); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Dimension change mid-stream.
	dec := &DiffDecoder{}
	if _, err := dec.Decode(enc2(vclock.Of(1, 2))); err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode(enc2(vclock.Of(1, 2, 3))); err == nil {
		t.Error("dimension change accepted")
	}
}

func enc2(v vclock.VC) []byte {
	e := &DiffEncoder{}
	return e.Encode(v)
}

func TestChangedComponents(t *testing.T) {
	if got := ChangedComponents(nil, vclock.Of(1, 2, 3)); got != 3 {
		t.Fatalf("nil prev: %d", got)
	}
	if got := ChangedComponents(vclock.Of(1, 2, 3), vclock.Of(1, 5, 3)); got != 1 {
		t.Fatalf("one change: %d", got)
	}
	if got := ChangedComponents(vclock.Of(1, 2), vclock.Of(1, 2)); got != 0 {
		t.Fatalf("no change: %d", got)
	}
}
