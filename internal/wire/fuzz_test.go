package wire

import (
	"errors"
	"testing"

	"hierdet/internal/interval"
	"hierdet/internal/repair"
	"hierdet/internal/vclock"
)

// requireTyped asserts every decode error wraps one of the two sentinel
// categories — the contract transports dispatch on.
func requireTyped(t *testing.T, err error) {
	t.Helper()
	if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
		t.Fatalf("decode error %v wraps neither ErrCorrupt nor ErrTruncated", err)
	}
}

// FuzzDecodeReport hardens the report decoder: arbitrary bytes must never
// panic, rejections must be typed, and accepted frames must re-encode to an
// equivalent frame.
func FuzzDecodeReport(f *testing.F) {
	iv := interval.New(1, 2, vclock.Of(1, 0, 3), vclock.Of(4, 5, 6))
	seed, _ := EncodeReport(Report{Iv: iv, LinkSeq: 7})
	f.Add(seed)
	agg := interval.Aggregate([]interval.Interval{iv}, 0, 0, false)
	seed2, _ := EncodeReport(Report{Iv: agg})
	f.Add(seed2)
	f.Add([]byte{})
	f.Add([]byte{0xD7, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeReport(data)
		if err != nil {
			requireTyped(t, err)
			return
		}
		out, err := EncodeReport(r)
		if err != nil {
			t.Fatalf("re-encode of accepted report failed: %v", err)
		}
		r2, err := DecodeReport(out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !r2.Iv.Lo.Equal(r.Iv.Lo) || !r2.Iv.Hi.Equal(r.Iv.Hi) ||
			r2.Iv.Origin != r.Iv.Origin || r2.LinkSeq != r.LinkSeq {
			t.Fatal("decode/encode/decode changed the report")
		}
	})
}

// FuzzDecodeHeartbeat must never panic, reject with typed errors, and
// round-trip accepted frames (epoch, root-seeking flag, covered set).
func FuzzDecodeHeartbeat(f *testing.F) {
	f.Add(EncodeHeartbeat(Heartbeat{Sender: 3}))
	f.Add(EncodeHeartbeat(Heartbeat{Sender: 5, Epoch: 2, RootSeeking: true, Covered: []int{5, 6, 7}}))
	f.Add([]byte{})
	f.Add([]byte{0xD7, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		hb, err := DecodeHeartbeat(data)
		if err != nil {
			requireTyped(t, err)
			return
		}
		hb2, err := DecodeHeartbeat(EncodeHeartbeat(hb))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if hb2.Sender != hb.Sender || hb2.Epoch != hb.Epoch || hb2.RootSeeking != hb.RootSeeking ||
			len(hb2.Covered) != len(hb.Covered) {
			t.Fatal("decode/encode/decode changed the heartbeat")
		}
	})
}

// FuzzDecodeAttach covers the four repair-protocol frames: request (with
// covered set), grant, confirm, abort.
func FuzzDecodeAttach(f *testing.F) {
	f.Add(EncodeAttach(Attach{From: 1, Msg: repair.Msg{Type: repair.Req, ReqID: 9, Covered: []int{1, 4}}}))
	f.Add(EncodeAttach(Attach{From: 2, Msg: repair.Msg{Type: repair.Grant, ReqID: 9}}))
	f.Add(EncodeAttach(Attach{From: 1, Msg: repair.Msg{Type: repair.Confirm, ReqID: 9}}))
	f.Add(EncodeAttach(Attach{From: 1, Msg: repair.Msg{Type: repair.Abort, ReqID: 9}}))
	f.Add([]byte{})
	f.Add([]byte{0xD7, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := DecodeAttach(data)
		if err != nil {
			requireTyped(t, err)
			return
		}
		a2, err := DecodeAttach(EncodeAttach(a))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if a2.From != a.From || a2.Msg.Type != a.Msg.Type || a2.Msg.ReqID != a.Msg.ReqID ||
			len(a2.Msg.Covered) != len(a.Msg.Covered) {
			t.Fatal("decode/encode/decode changed the attach frame")
		}
	})
}
