package wire

import (
	"testing"

	"hierdet/internal/interval"
	"hierdet/internal/vclock"
)

// FuzzDecodeReport hardens the report decoder: arbitrary bytes must never
// panic, and accepted frames must re-encode to an equivalent frame.
func FuzzDecodeReport(f *testing.F) {
	iv := interval.New(1, 2, vclock.Of(1, 0, 3), vclock.Of(4, 5, 6))
	seed, _ := EncodeReport(Report{Iv: iv, LinkSeq: 7})
	f.Add(seed)
	agg := interval.Aggregate([]interval.Interval{iv}, 0, 0, false)
	seed2, _ := EncodeReport(Report{Iv: agg})
	f.Add(seed2)
	f.Add([]byte{})
	f.Add([]byte{0xD7, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeReport(data)
		if err != nil {
			return
		}
		out, err := EncodeReport(r)
		if err != nil {
			t.Fatalf("re-encode of accepted report failed: %v", err)
		}
		r2, err := DecodeReport(out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !r2.Iv.Lo.Equal(r.Iv.Lo) || !r2.Iv.Hi.Equal(r.Iv.Hi) ||
			r2.Iv.Origin != r.Iv.Origin || r2.LinkSeq != r.LinkSeq {
			t.Fatal("decode/encode/decode changed the report")
		}
	})
}

// FuzzDecodeHeartbeat must never panic.
func FuzzDecodeHeartbeat(f *testing.F) {
	f.Add(EncodeHeartbeat(3))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		sender, err := DecodeHeartbeat(data)
		if err != nil {
			return
		}
		if got := EncodeHeartbeat(sender); len(got) != HeartbeatSize {
			t.Fatal("re-encode size wrong")
		}
	})
}
