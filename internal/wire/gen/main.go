// Command gen regenerates the golden v1 report corpus under
// testdata/v1corpus. The corpus pins the fixed-width wire format: frames in
// it must keep decoding byte-identically under the unified decoder
// (TestGoldenV1Corpus), so a cluster can roll from v1 to v2 nodes without a
// flag day. Run via `go generate ./internal/wire`; the frames are fully
// deterministic, so regeneration only changes the files when the v1 encoder
// itself changes — which is exactly the diff the corpus exists to surface.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"hierdet/internal/interval"
	"hierdet/internal/vclock"
	"hierdet/internal/wire"
)

func main() {
	dir := filepath.Join("testdata", "v1corpus")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}

	reports := []wire.Report{
		{Iv: interval.New(0, 0, vclock.Of(0), vclock.Of(0))},
		{Iv: interval.New(3, 7, vclock.Of(1, 2, 3, 4), vclock.Of(5, 6, 7, 8)), LinkSeq: 42, Epoch: 6},
	}

	agg := interval.Aggregate([]interval.Interval{
		interval.New(0, 0, vclock.Of(1, 0, 0), vclock.Of(3, 2, 2)),
		interval.New(2, 0, vclock.Of(0, 0, 1), vclock.Of(2, 2, 3)),
	}, 1, 5, false)
	reports = append(reports, wire.Report{Iv: agg, LinkSeq: 9, Epoch: 1})

	// Large-component clocks exercise the top of the uint32 clock domain —
	// the widest values v1's fixed 8-byte field carries and v2 compresses.
	big := make(vclock.VC, 32)
	bigHi := make(vclock.VC, 32)
	r := rand.New(rand.NewSource(11))
	for i := range big {
		big[i] = uint32(r.Int63n(1 << 31))
		bigHi[i] = big[i] + uint32(r.Intn(100))
	}
	reports = append(reports, wire.Report{Iv: interval.New(17, 1234, big, bigHi), LinkSeq: 1 << 20, Epoch: 3})

	for i, rep := range reports {
		data, err := wire.EncodeReport(rep)
		if err != nil {
			fatal(err)
		}
		path := filepath.Join(dir, fmt.Sprintf("report%02d.bin", i))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d bytes\n", path, len(data))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gen:", err)
	os.Exit(1)
}
