package wire

import (
	"testing"

	"hierdet/internal/core"
	"hierdet/internal/interval"
	"hierdet/internal/tree"
	"hierdet/internal/workload"
)

// TestWireCarriesTheProtocol proves the wire format is sufficient for the
// hierarchical algorithm: a two-level tree where every child→parent report
// is serialized and re-parsed must detect exactly what direct delivery
// detects. (Members are deliberately not carried — they are a debugging
// retention — so this runs without KeepMembers.)
func TestWireCarriesTheProtocol(t *testing.T) {
	topo := tree.Balanced(2, 2)
	e := workload.Generate(workload.Config{
		Topology: topo, Rounds: 25, Seed: 3, PGlobal: 0.4, PGroup: 0.3,
	})

	run := func(overWire bool) map[int]int {
		cfg := core.Config{N: topo.N(), Strict: true}
		nodes := make(map[int]*core.Node, topo.N())
		for id := 0; id < topo.N(); id++ {
			nodes[id] = core.NewNode(id, cfg, true)
			for _, c := range topo.Children(id) {
				nodes[id].AddChild(c)
			}
		}
		counts := make(map[int]int)
		linkSeq := make(map[int]int)
		var deliver func(node, src int, iv interval.Interval)
		deliver = func(node, src int, iv interval.Interval) {
			for _, det := range nodes[node].OnInterval(src, iv) {
				counts[node]++
				parent := topo.Parent(node)
				if parent == tree.None {
					continue
				}
				up := det.Agg
				if overWire {
					frame, err := EncodeReport(Report{Iv: up, LinkSeq: linkSeq[node]})
					if err != nil {
						t.Fatal(err)
					}
					linkSeq[node]++
					back, err := DecodeReport(frame)
					if err != nil {
						t.Fatal(err)
					}
					up = back.Iv
				}
				deliver(parent, node, up)
			}
		}
		// Feed round by round, process order.
		for round := 0; ; round++ {
			fed := false
			for p := 0; p < e.N; p++ {
				if round < len(e.Streams[p]) {
					deliver(p, p, e.Streams[p][round])
					fed = true
				}
			}
			if !fed {
				return counts
			}
		}
	}

	direct := run(false)
	wired := run(true)
	for id := 0; id < topo.N(); id++ {
		if direct[id] != wired[id] {
			t.Fatalf("node %d: direct %d detections, over-wire %d", id, direct[id], wired[id])
		}
		if id == 0 && direct[id] == 0 {
			t.Fatal("degenerate: no root detections at all")
		}
	}
}
