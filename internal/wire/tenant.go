package wire

// Tenant framing: the wire-level half of the multi-tenant control plane
// (internal/tenantplane). One shared transport carries the traffic of many
// independent detection trees, so every frame must say which tree it belongs
// to — without costing the single-tenant deployment a byte.
//
// Two mechanisms, chosen per frame kind:
//
//   - Reports carry the tenant inline: flagTenant plus a tenant-id uvarint
//     right after the flags byte (see v2.go). Inline beats an envelope here
//     because reports are the frames a transport rewrites for cross-frame
//     delta compression — an envelope would either break IsReportV2-based
//     classification or force every chain operation to unwrap and rewrap.
//     The tag sits at a fixed offset, so TagReportTenant/StripReportTenant
//     splice it in O(len) copies without touching the clocks.
//
//   - Everything else (heartbeats, attach frames, report batches) travels
//     wrapped in a tenant envelope, a v2-only frame that prefixes the inner
//     frame with a tenant id:
//
//	tenantEnv := magic u8 | verV2 u8 | kind u8 (KindTenantEnv) |
//	             tenant uv | inner frame bytes
//
// Tenant 0 — the default tenant, and the only one a pre-tenant peer can be —
// is never tagged and never enveloped: its frames are byte-identical to the
// single-tenant wire format, which is the whole backward-compatibility story
// (v1 frames and untagged v2 frames decode as tenant 0).

import (
	"encoding/binary"
	"fmt"
)

// AppendTenantEnvelope appends a tenant envelope wrapping inner to dst and
// returns the extended buffer. tenant must be nonzero: the default tenant's
// frames travel bare.
func AppendTenantEnvelope(dst []byte, tenant uint32, inner []byte) []byte {
	if tenant == 0 {
		panic("wire: tenant 0 frames travel unwrapped")
	}
	dst = append(dst, magic, verV2, KindTenantEnv)
	dst = binary.AppendUvarint(dst, uint64(tenant))
	return append(dst, inner...)
}

// TenantEnvelopeSize returns the encoded size of an envelope wrapping an
// inner frame of innerLen bytes.
func TenantEnvelopeSize(tenant uint32, innerLen int) int {
	return 3 + uvarintLen(uint64(tenant)) + innerLen
}

// IsTenantEnvelope reports whether a frame is a tenant envelope.
func IsTenantEnvelope(data []byte) bool {
	return len(data) >= 3 && data[0] == magic && data[1] == verV2 && data[2] == KindTenantEnv
}

// DecodeTenantEnvelope splits a tenant envelope into its tenant id and inner
// frame. The returned slice aliases data — the caller owns both or copies.
func DecodeTenantEnvelope(data []byte) (uint32, []byte, error) {
	if !IsTenantEnvelope(data) {
		return 0, nil, fmt.Errorf("wire: not a tenant envelope: %w", ErrCorrupt)
	}
	v, sz := binary.Uvarint(data[3:])
	if sz <= 0 {
		return 0, nil, uvarintFieldErr(sz)
	}
	if v > 1<<32-1 {
		return 0, nil, fmt.Errorf("wire: envelope tenant overflows u32: %w", ErrCorrupt)
	}
	if v == 0 {
		return 0, nil, fmt.Errorf("wire: envelope carrying the default tenant: %w", ErrCorrupt)
	}
	inner := data[3+sz:]
	if len(inner) == 0 {
		return 0, nil, fmt.Errorf("wire: empty tenant envelope: %w", ErrTruncated)
	}
	return uint32(v), inner, nil
}

// TagReportTenant appends frame re-tagged with the given tenant id to dst: a
// four-byte header with flagTenant set, the tenant uvarint, then the rest of
// the original frame verbatim. frame must be an untagged v2 report; the
// clocks are not decoded, so a basis-relative frame stays basis-relative.
func TagReportTenant(dst []byte, tenant uint32, frame []byte) ([]byte, error) {
	if tenant == 0 {
		panic("wire: tenant 0 reports travel untagged")
	}
	if !IsReportV2(frame) {
		return dst, fmt.Errorf("wire: not a v2 report frame: %w", ErrCorrupt)
	}
	if frame[3]&flagTenant != 0 {
		return dst, fmt.Errorf("wire: report already tenant-tagged: %w", ErrCorrupt)
	}
	dst = append(dst, magic, verV2, KindReport, frame[3]|flagTenant)
	dst = binary.AppendUvarint(dst, uint64(tenant))
	return append(dst, frame[4:]...), nil
}

// StripReportTenant appends frame with its tenant tag removed to dst,
// returning the extended buffer and the tag's tenant id. frame must be a
// tenant-tagged v2 report.
func StripReportTenant(dst []byte, frame []byte) ([]byte, uint32, error) {
	if !IsReportV2(frame) {
		return dst, 0, fmt.Errorf("wire: not a v2 report frame: %w", ErrCorrupt)
	}
	if frame[3]&flagTenant == 0 {
		return dst, 0, fmt.Errorf("wire: report is not tenant-tagged: %w", ErrCorrupt)
	}
	v, sz := binary.Uvarint(frame[4:])
	if sz <= 0 {
		return dst, 0, uvarintFieldErr(sz)
	}
	if v == 0 || v > 1<<32-1 {
		return dst, 0, fmt.Errorf("wire: report tenant tag %d: %w", v, ErrCorrupt)
	}
	dst = append(dst, magic, verV2, KindReport, frame[3]&^flagTenant)
	return append(dst, frame[4+sz:]...), uint32(v), nil
}
