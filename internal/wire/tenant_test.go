package wire

import (
	"bytes"
	"errors"
	"testing"

	"hierdet/internal/vclock"
)

// TestReportTenantRoundTrip pins the tenant tag's encoding contract: tenant 0
// encodes byte-identically to a pre-tenant frame, nonzero tenants round-trip
// through encode/decode, and ReportTenantV2/ReportOriginV2 read the header
// without decoding the clocks.
func TestReportTenantRoundTrip(t *testing.T) {
	base := v2Report(3, 7, 42, 6, vclock.Of(1, 2, 3, 4), vclock.Of(5, 6, 7, 8))
	plain := EncodeReportV2(base)

	tagged := base
	tagged.Tenant = 0
	if got := EncodeReportV2(tagged); !bytes.Equal(got, plain) {
		t.Fatal("tenant 0 must encode byte-identically to an untagged frame")
	}
	if tn, err := ReportTenantV2(plain); err != nil || tn != 0 {
		t.Fatalf("ReportTenantV2(untagged) = %d, %v; want 0, nil", tn, err)
	}

	for _, tenant := range []uint32{1, 200, 1 << 20, 1<<32 - 1} {
		tagged.Tenant = tenant
		data := EncodeReportV2(tagged)
		if len(data) != ReportSizeV2(tagged, nil) {
			t.Fatalf("tenant %d: encoded %d bytes, ReportSizeV2 says %d", tenant, len(data), ReportSizeV2(tagged, nil))
		}
		if !IsReportV2(data) || ReportIsDelta(data) {
			t.Fatalf("tenant %d: frame misclassified", tenant)
		}
		if tn, err := ReportTenantV2(data); err != nil || tn != tenant {
			t.Fatalf("ReportTenantV2 = %d, %v; want %d, nil", tn, err, tenant)
		}
		if origin, err := ReportOriginV2(data); err != nil || origin != 3 {
			t.Fatalf("tenant %d: ReportOriginV2 = %d, %v; want 3, nil", tenant, origin, err)
		}
		back, err := DecodeReport(data)
		if err != nil {
			t.Fatal(err)
		}
		sameReport(t, back, tagged, "tagged")
		if back.Tenant != tenant {
			t.Fatalf("decoded tenant = %d, want %d", back.Tenant, tenant)
		}
	}

	// A tagged basis-relative frame keeps its tag through the delta path.
	tagged.Tenant = 9
	basis := vclock.Of(1, 1, 1, 1)
	delta := AppendReportV2(nil, tagged, basis)
	if !ReportIsDelta(delta) {
		t.Fatal("basis-relative tagged frame not flagged as delta")
	}
	if tn, err := ReportTenantV2(delta); err != nil || tn != 9 {
		t.Fatalf("ReportTenantV2(delta) = %d, %v", tn, err)
	}
	var back Report
	if err := DecodeReportInto(delta, &back, basis); err != nil {
		t.Fatal(err)
	}
	sameReport(t, back, tagged, "tagged delta")
	if back.Tenant != 9 {
		t.Fatalf("delta-decoded tenant = %d, want 9", back.Tenant)
	}

	// Decoding an untagged frame into reused storage must reset Tenant.
	if err := DecodeReportInto(plain, &back, nil); err != nil {
		t.Fatal(err)
	}
	if back.Tenant != 0 {
		t.Fatalf("reused decode kept stale tenant %d", back.Tenant)
	}
}

// TestTagStripReportTenant pins the splice helpers against the encoder: the
// spliced-on tag must be byte-identical to encoding with Report.Tenant set,
// and stripping must restore the original frame and report the tag.
func TestTagStripReportTenant(t *testing.T) {
	r := v2Report(5, 2, 11, 1, vclock.Of(10, 20, 30), vclock.Of(11, 22, 33))
	plain := EncodeReportV2(r)

	spliced, err := TagReportTenant(nil, 77, plain)
	if err != nil {
		t.Fatal(err)
	}
	direct := r
	direct.Tenant = 77
	if !bytes.Equal(spliced, EncodeReportV2(direct)) {
		t.Fatal("spliced tag differs from direct encoding")
	}

	stripped, tenant, err := StripReportTenant(nil, spliced)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != 77 || !bytes.Equal(stripped, plain) {
		t.Fatalf("strip = tenant %d, frame equal %t", tenant, bytes.Equal(stripped, plain))
	}

	// Double-tagging and stripping an untagged frame are caller bugs the
	// helpers must reject rather than corrupt.
	if _, err := TagReportTenant(nil, 1, spliced); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("double tag: %v, want ErrCorrupt", err)
	}
	if _, _, err := StripReportTenant(nil, plain); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("strip untagged: %v, want ErrCorrupt", err)
	}
	if _, err := TagReportTenant(nil, 1, []byte{magic, KindReport}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tag v1 frame: %v, want ErrCorrupt", err)
	}
}

// TestTenantEnvelopeRoundTrip covers the envelope framing for non-report
// frames: wrap, classify, unwrap, and reject the malformed shapes.
func TestTenantEnvelopeRoundTrip(t *testing.T) {
	inner := EncodeHeartbeat(Heartbeat{Sender: 4, Epoch: 2, Covered: []int{4, 5}})
	env := AppendTenantEnvelope(nil, 300, inner)
	if len(env) != TenantEnvelopeSize(300, len(inner)) {
		t.Fatalf("envelope is %d bytes, TenantEnvelopeSize says %d", len(env), TenantEnvelopeSize(300, len(inner)))
	}
	if !IsTenantEnvelope(env) || IsTenantEnvelope(inner) {
		t.Fatal("IsTenantEnvelope misclassified")
	}
	if k, err := FrameKind(env); err != nil || k != KindTenantEnv {
		t.Fatalf("FrameKind = %d, %v", k, err)
	}
	tenant, got, err := DecodeTenantEnvelope(env)
	if err != nil || tenant != 300 || !bytes.Equal(got, inner) {
		t.Fatalf("decode = %d, equal %t, %v", tenant, bytes.Equal(got, inner), err)
	}
	if hb, err := DecodeHeartbeat(got); err != nil || hb.Sender != 4 {
		t.Fatalf("inner heartbeat: %+v, %v", hb, err)
	}

	for _, tc := range []struct {
		name string
		data []byte
		want error
	}{
		{"not an envelope", inner, ErrCorrupt},
		{"truncated header", []byte{magic, verV2}, ErrCorrupt},
		{"missing tenant varint", []byte{magic, verV2, KindTenantEnv}, ErrTruncated},
		{"unterminated tenant varint", []byte{magic, verV2, KindTenantEnv, 0x80}, ErrTruncated},
		{"tenant overflows u32", append([]byte{magic, verV2, KindTenantEnv}, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f), ErrCorrupt},
		{"default tenant enveloped", []byte{magic, verV2, KindTenantEnv, 0x00, 0x01}, ErrCorrupt},
		{"empty inner frame", []byte{magic, verV2, KindTenantEnv, 0x05}, ErrTruncated},
	} {
		if _, _, err := DecodeTenantEnvelope(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestReportHeaderTruncatedVarints is the table the ReportOriginV2 fix was
// missing: truncated and overlong varints in the v2 report header must come
// back as the right typed error from the cheap header readers and the full
// decoder alike — never as a misread id.
func TestReportHeaderTruncatedVarints(t *testing.T) {
	hdr := func(flags byte, rest ...byte) []byte {
		return append([]byte{magic, verV2, KindReport, flags}, rest...)
	}
	overflow := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x7f} // uvarint > 1<<32-1
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty body", hdr(0), ErrTruncated},
		{"origin varint cut mid-byte", hdr(0, 0x80), ErrTruncated},
		{"origin varint cut after two bytes", hdr(0, 0xff, 0x80), ErrTruncated},
		{"origin overflows u32", hdr(0, overflow...), ErrCorrupt},
		{"tagged: tenant varint missing", hdr(flagTenant), ErrTruncated},
		{"tagged: tenant varint cut mid-byte", hdr(flagTenant, 0x80), ErrTruncated},
		{"tagged: tenant overflows u32", hdr(flagTenant, overflow...), ErrCorrupt},
		{"tagged: origin missing after tenant", hdr(flagTenant, 0x07), ErrTruncated},
		{"tagged: origin cut after tenant", hdr(flagTenant, 0x07, 0x80), ErrTruncated},
		{"not a v2 report", []byte{magic, KindReport, 0, 0}, ErrCorrupt},
		{"short frame", []byte{magic, verV2, KindReport}, ErrCorrupt},
	}
	for _, tc := range cases {
		if _, err := ReportOriginV2(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("ReportOriginV2(%s): err = %v, want %v", tc.name, err, tc.want)
		}
		var r Report
		if err := DecodeReportInto(tc.data, &r, nil); err == nil {
			t.Errorf("DecodeReportInto(%s): accepted a broken header", tc.name)
		} else if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
			t.Errorf("DecodeReportInto(%s): untyped error %v", tc.name, err)
		}
	}
	// ReportTenantV2 shares the tagged-header cases.
	for _, tc := range cases[4:7] {
		if _, err := ReportTenantV2(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("ReportTenantV2(%s): err = %v, want %v", tc.name, err, tc.want)
		}
	}
	// A tagged zero tenant is a frame no encoder produces: corrupt.
	if err := DecodeReportInto(hdr(flagTenant, 0x00, 0x03), &Report{}, nil); !errors.Is(err, ErrCorrupt) {
		t.Errorf("tagged zero tenant: err = %v, want ErrCorrupt", err)
	}
}
