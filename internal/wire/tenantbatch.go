package wire

// Tenant batch framing: cross-tenant frame coalescing on shared links. When
// many tenants share one transport connection, their frames to a common peer
// often sit in the send queue back to back; a tenant batch packs a run of
// consecutive tenant-tagged frames into one wire frame, so the stream pays
// one transport envelope per run instead of one per tenant frame:
//
//	tenantBatch := magic u8 | verV2 u8 | kind u8 (KindTenantBatch) |
//	               (innerLen uv | inner frame bytes)*
//
// Inner frames repeat to the end of the batch — each is length-prefixed, so
// no count field is needed and a batch can be packed incrementally. Every
// inner frame must itself be tenant-tagged (a tenant envelope or a
// tenant-tagged v2 report, see IsTenantTagged): the default tenant's frames
// stay bare and never enter a batch, keeping the single-tenant byte stream
// untouched — the same compatibility rule as the rest of tenant framing.

import (
	"encoding/binary"
	"fmt"
)

// AppendTenantBatchHeader appends an empty tenant batch header to dst. Inner
// frames follow via AppendTenantBatchFrame.
func AppendTenantBatchHeader(dst []byte) []byte {
	return append(dst, magic, verV2, KindTenantBatch)
}

// AppendTenantBatchFrame appends one length-prefixed inner frame to an open
// tenant batch.
func AppendTenantBatchFrame(dst []byte, inner []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(inner)))
	return append(dst, inner...)
}

// IsTenantBatch reports whether a frame is a tenant batch.
func IsTenantBatch(data []byte) bool {
	return len(data) >= 3 && data[0] == magic && data[1] == verV2 && data[2] == KindTenantBatch
}

// IsTenantTagged reports whether a frame carries an explicit tenant id — a
// tenant envelope or a tenant-tagged v2 report — and is therefore eligible
// for tenant-batch packing.
func IsTenantTagged(data []byte) bool {
	if IsTenantEnvelope(data) {
		return true
	}
	return IsReportV2(data) && data[3]&flagTenant != 0
}

// DecodeTenantBatch walks a tenant batch, calling fn once per inner frame in
// order. The slices alias data. A structural error (bad header, truncated
// inner, empty batch) is returned without fn having been called for the bad
// suffix; frames already yielded stand.
func DecodeTenantBatch(data []byte, fn func(inner []byte)) error {
	if !IsTenantBatch(data) {
		return fmt.Errorf("wire: not a tenant batch: %w", ErrCorrupt)
	}
	rest := data[3:]
	if len(rest) == 0 {
		return fmt.Errorf("wire: empty tenant batch: %w", ErrTruncated)
	}
	for len(rest) > 0 {
		v, sz := binary.Uvarint(rest)
		if sz <= 0 {
			return uvarintFieldErr(sz)
		}
		rest = rest[sz:]
		if v == 0 || v > uint64(len(rest)) {
			return fmt.Errorf("wire: tenant batch inner length %d with %d bytes left: %w", v, len(rest), ErrTruncated)
		}
		fn(rest[:v:v])
		rest = rest[v:]
	}
	return nil
}
