package wire

import (
	"bytes"
	"errors"
	"testing"

	"hierdet/internal/vclock"
)

// TestTenantBatchRoundTrip pins the coalescing frame: a run of tenant-tagged
// frames packs into one batch, decodes back byte-identical and in order, and
// classifies as a distinct v2-only kind.
func TestTenantBatchRoundTrip(t *testing.T) {
	rep := v2Report(3, 7, 42, 6, vclock.Of(1, 2, 3, 4), vclock.Of(5, 6, 7, 8))
	rep.Tenant = 12
	tagged := EncodeReportV2(rep)
	env := AppendTenantEnvelope(nil, 300, EncodeHeartbeat(Heartbeat{Sender: 4, Epoch: 2, Covered: []int{4, 5}}))
	inners := [][]byte{tagged, env, tagged}

	batch := AppendTenantBatchHeader(nil)
	for _, f := range inners {
		batch = AppendTenantBatchFrame(batch, f)
	}
	if !IsTenantBatch(batch) || IsTenantBatch(tagged) || IsTenantBatch(env) {
		t.Fatal("IsTenantBatch misclassified")
	}
	if k, err := FrameKind(batch); err != nil || k != KindTenantBatch {
		t.Fatalf("FrameKind = %d, %v", k, err)
	}

	var got [][]byte
	if err := DecodeTenantBatch(batch, func(inner []byte) { got = append(got, inner) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(inners) {
		t.Fatalf("decoded %d inners, want %d", len(got), len(inners))
	}
	for i := range got {
		if !bytes.Equal(got[i], inners[i]) {
			t.Fatalf("inner %d differs after round trip", i)
		}
	}
}

// TestTenantBatchEligibility pins which frames a packer may coalesce: only
// explicitly tenant-tagged frames — never the default tenant's bare frames,
// whose byte stream must stay identical to a single-tenant deployment's.
func TestTenantBatchEligibility(t *testing.T) {
	rep := v2Report(3, 7, 42, 6, vclock.Of(1, 2), vclock.Of(5, 6))
	bare := EncodeReportV2(rep)
	rep.Tenant = 9
	tagged := EncodeReportV2(rep)
	env := AppendTenantEnvelope(nil, 7, EncodeHeartbeat(Heartbeat{Sender: 1, Epoch: 1}))
	hb := EncodeHeartbeat(Heartbeat{Sender: 1, Epoch: 1})

	for _, tc := range []struct {
		name  string
		frame []byte
		want  bool
	}{
		{"tagged report", tagged, true},
		{"tenant envelope", env, true},
		{"bare v2 report", bare, false},
		{"bare heartbeat", hb, false},
		{"short junk", []byte{magic}, false},
	} {
		if got := IsTenantTagged(tc.frame); got != tc.want {
			t.Errorf("IsTenantTagged(%s) = %t, want %t", tc.name, got, tc.want)
		}
	}
}

// TestTenantBatchCorrupt: structural damage comes back as the right typed
// error, and inners already yielded before the damage stand.
func TestTenantBatchCorrupt(t *testing.T) {
	env := AppendTenantEnvelope(nil, 7, EncodeHeartbeat(Heartbeat{Sender: 1, Epoch: 1}))
	good := AppendTenantBatchFrame(AppendTenantBatchHeader(nil), env)

	for _, tc := range []struct {
		name string
		data []byte
		want error
	}{
		{"not a batch", env, ErrCorrupt},
		{"empty batch", AppendTenantBatchHeader(nil), ErrTruncated},
		{"unterminated length varint", append(AppendTenantBatchHeader(nil), 0x80), ErrTruncated},
		{"zero-length inner", append(AppendTenantBatchHeader(nil), 0x00), ErrTruncated},
		{"inner longer than batch", append(AppendTenantBatchHeader(nil), 0x7f, 0x01), ErrTruncated},
		{"truncated second inner", append(append([]byte{}, good...), 0x09, 0x01), ErrTruncated},
	} {
		if err := DecodeTenantBatch(tc.data, func([]byte) {}); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}

	yielded := 0
	damaged := append(append([]byte{}, good...), 0x44)
	if err := DecodeTenantBatch(damaged, func([]byte) { yielded++ }); err == nil || yielded != 1 {
		t.Fatalf("damaged tail: err=%v yielded=%d, want error after 1 inner", err, yielded)
	}
}
