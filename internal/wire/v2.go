package wire

// Wire format v2 for interval reports: delta-varint clocks instead of v1's
// fixed 8 bytes per component.
//
// The paper's cost model (Table I, Eq. 11) counts messages; what a deployment
// actually pays is bytes, and v1 ships 4+8n bytes per clock no matter how
// small the entries are. Clock entries are small integers and successive
// reports on one link are near-monotone (Theorem 2 succession: the next
// interval starts causally after the previous one ended), so v2 encodes
//
//   - Hi as a zig-zag varint delta from Lo (an interval is a short duration:
//     Hi−Lo is small in every component), and
//   - Lo either absolutely (varints of the raw components) or — when a
//     transport supplies a stream basis — as a delta from the previous
//     report's Hi on the same link, which collapses a near-monotone step to
//     one or two bytes per component.
//
// Layout (varints little-endian per Go's encoding/binary, everything else
// as in v1):
//
//	reportV2 := magic u8 | verV2 u8 | kind u8 (KindReport) | flags u8 |
//	            [tenant uv] | origin uv | seq uv | linkSeq uv | epoch uv |
//	            spanLen uv | span uv[spanLen] |
//	            lo vclock-delta | hi vclock-delta(base=lo)
//
// flags bit0 marks an aggregated interval, bit1 marks a basis-relative Lo,
// bit2 marks a tenant-tagged report (the tenant uvarint is present; see
// tenant.go — tenant 0 is always encoded untagged).
// verV2 (0x56) occupies the byte where v1 frames carry their kind; kinds stop
// below 0x10, so one byte disambiguates every frame version on the wire and
// mixed-version clusters decode each other's traffic during a rollout
// (DecodeReport accepts both forms; heartbeats and attach frames are small
// and stay v1-only).
//
// A basis-relative frame is only decodable by a receiver that holds the same
// basis, so bases are strictly connection-scoped state: the TCP transport
// rebases frames per connection and resets on every (re)dial — see
// internal/transport/tcptransport. Everything above the transport only ever
// sees absolute frames.

//go:generate go run ./gen

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"hierdet/internal/vclock"
)

// verV2 is the frame-version byte of wire format v2. It shares the kind
// byte's position in v1 frames; Kind* values stay below 0x10 so the two can
// never collide.
const verV2 = 0x56

// Frame versions as reported by FrameVersion.
const (
	Version1 = 1
	Version2 = 2
)

// Report flag bits (v2 frames only).
const (
	flagAgg     = 1 << 0
	flagDeltaLo = 1 << 1
	// flagTenant marks a tenant-tagged report: a tenant-id uvarint sits
	// immediately after the flags byte, before every other varint field.
	// Putting it first keeps tagging a cheap splice at a fixed offset — a
	// transport can add or strip the tag without decoding the clocks — and
	// leaving it off for tenant 0 keeps pre-tenant frames byte-identical.
	flagTenant = 1 << 2
)

// FrameVersion returns the wire-format version of a frame after validating
// the magic: Version1 for the fixed-width frames, Version2 for delta frames.
func FrameVersion(data []byte) (int, error) {
	if len(data) < 2 {
		return 0, fmt.Errorf("wire: frame header: %w", ErrTruncated)
	}
	if data[0] != magic {
		return 0, fmt.Errorf("wire: bad magic 0x%02x: %w", data[0], ErrCorrupt)
	}
	if data[1] == verV2 {
		return Version2, nil
	}
	return Version1, nil
}

// IsReportV2 reports whether a frame is a v2 report (of either Lo
// encoding). Transports use it to classify payloads cheaply before deciding
// whether a frame participates in stream-basis chaining.
func IsReportV2(data []byte) bool {
	return len(data) >= 4 && data[0] == magic && data[1] == verV2 && data[2] == KindReport
}

// ReportIsDelta reports whether a frame is a v2 report whose Lo clock is
// encoded against a stream basis — i.e. it can only be decoded by a receiver
// holding the sender's basis for this stream. Transports use it to keep
// basis-relative frames from escaping their connection scope.
func ReportIsDelta(data []byte) bool {
	return len(data) >= 4 && data[0] == magic && data[1] == verV2 &&
		data[2] == KindReport && data[3]&flagDeltaLo != 0
}

// ReportOriginV2 extracts the origin id from a v2 report frame without
// decoding the rest. Transports use it to pick the stream basis a frame
// belongs to before running the full (basis-dependent) decode.
func ReportOriginV2(data []byte) (int, error) {
	if len(data) < 4 || data[0] != magic || data[1] != verV2 || data[2] != KindReport {
		return 0, fmt.Errorf("wire: not a v2 report frame: %w", ErrCorrupt)
	}
	rest := data[4:]
	if data[3]&flagTenant != 0 {
		// Skip the tenant tag; the origin varint follows it.
		v, sz := binary.Uvarint(rest)
		if sz <= 0 {
			return 0, uvarintFieldErr(sz)
		}
		if v > 1<<32-1 {
			return 0, fmt.Errorf("wire: report tenant overflows u32: %w", ErrCorrupt)
		}
		rest = rest[sz:]
	}
	v, sz := binary.Uvarint(rest)
	if sz <= 0 {
		return 0, uvarintFieldErr(sz)
	}
	if v > 1<<32-1 {
		return 0, fmt.Errorf("wire: report origin overflows u32: %w", ErrCorrupt)
	}
	return int(uint32(v)), nil
}

// ReportTenantV2 extracts the tenant id from a v2 report frame without
// decoding the rest: 0 for untagged frames (the default tenant), the tag's
// value otherwise. Transports use it to key per-tenant stream state.
func ReportTenantV2(data []byte) (uint32, error) {
	if len(data) < 4 || data[0] != magic || data[1] != verV2 || data[2] != KindReport {
		return 0, fmt.Errorf("wire: not a v2 report frame: %w", ErrCorrupt)
	}
	if data[3]&flagTenant == 0 {
		return 0, nil
	}
	v, sz := binary.Uvarint(data[4:])
	if sz <= 0 {
		return 0, uvarintFieldErr(sz)
	}
	if v > 1<<32-1 {
		return 0, fmt.Errorf("wire: report tenant overflows u32: %w", ErrCorrupt)
	}
	return uint32(v), nil
}

// AppendReportV2 appends the v2 encoding of r to dst and returns the
// extended buffer. With a non-nil basis (the previous report's Hi on the same
// stream, length-matched to the clocks), Lo is delta-encoded against it;
// otherwise Lo is absolute. The function allocates only when dst lacks
// capacity.
func AppendReportV2(dst []byte, r Report, basis vclock.VC) []byte {
	var flags byte
	if r.Iv.Agg {
		flags |= flagAgg
	}
	loBase := vclock.VC(nil)
	if basis != nil && basis.Len() == r.Iv.Lo.Len() {
		flags |= flagDeltaLo
		loBase = basis
	}
	if r.Tenant != 0 {
		flags |= flagTenant
	}
	dst = append(dst, magic, verV2, KindReport, flags)
	if r.Tenant != 0 {
		dst = binary.AppendUvarint(dst, uint64(r.Tenant))
	}
	dst = binary.AppendUvarint(dst, uint64(uint32(r.Iv.Origin)))
	dst = binary.AppendUvarint(dst, uint64(uint32(r.Iv.Seq)))
	dst = binary.AppendUvarint(dst, uint64(uint32(r.LinkSeq)))
	dst = binary.AppendUvarint(dst, uint64(uint32(r.Epoch)))
	dst = binary.AppendUvarint(dst, uint64(len(r.Iv.Span)))
	for _, p := range r.Iv.Span {
		dst = binary.AppendUvarint(dst, uint64(uint32(p)))
	}
	dst = r.Iv.Lo.AppendDelta(dst, loBase)
	dst = r.Iv.Hi.AppendDelta(dst, r.Iv.Lo)
	return dst
}

// EncodeReportV2 serializes a report in wire format v2 with an absolute Lo
// (no stream basis) into fresh storage.
func EncodeReportV2(r Report) []byte {
	return AppendReportV2(make([]byte, 0, ReportSizeV2(r, nil)), r, nil)
}

// ReportSizeV2 returns the exact encoded size in bytes of r under v2 framing
// with the given basis (nil = absolute Lo) — the v2 counterpart of
// ReportSize for the byte-volume experiments.
func ReportSizeV2(r Report, basis vclock.VC) int {
	if basis != nil && basis.Len() != r.Iv.Lo.Len() {
		basis = nil
	}
	size := 4
	if r.Tenant != 0 {
		size += uvarintLen(uint64(r.Tenant))
	}
	size += uvarintLen(uint64(uint32(r.Iv.Origin))) +
		uvarintLen(uint64(uint32(r.Iv.Seq))) +
		uvarintLen(uint64(uint32(r.LinkSeq))) +
		uvarintLen(uint64(uint32(r.Epoch))) +
		uvarintLen(uint64(len(r.Iv.Span)))
	for _, p := range r.Iv.Span {
		size += uvarintLen(uint64(uint32(p)))
	}
	return size + r.Iv.Lo.DeltaSize(basis) + r.Iv.Hi.DeltaSize(r.Iv.Lo)
}

// uvarintLen is the encoded length of a uvarint.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// DecodeReportInto parses a report of either wire version into *r, reusing
// r's clock and span backing arrays when they have capacity — the
// allocation-free decode path. basis supplies the stream basis for
// basis-relative v2 frames (see AppendReportV2) and may be nil otherwise; a
// basis-relative frame decoded without its basis is rejected as corrupt,
// which makes a transport drop the connection — exactly right, since the
// stream state is unrecoverable and a redial resets both ends' bases.
func DecodeReportInto(data []byte, r *Report, basis vclock.VC) error {
	ver, err := FrameVersion(data)
	if err != nil {
		return err
	}
	if ver == Version1 {
		return decodeReportV1(data, r)
	}
	if len(data) < 4 {
		return fmt.Errorf("wire: report header: %w", ErrTruncated)
	}
	if data[2] != KindReport {
		return fmt.Errorf("wire: v2 kind %d is not a report: %w", data[2], ErrCorrupt)
	}
	flags := data[3]
	if flags&^(flagAgg|flagDeltaLo|flagTenant) != 0 {
		return fmt.Errorf("wire: report flags 0x%02x: %w", flags, ErrCorrupt)
	}
	rest := data[4:]
	r.Tenant = 0
	if flags&flagTenant != 0 {
		v, sz := binary.Uvarint(rest)
		if sz <= 0 {
			return uvarintFieldErr(sz)
		}
		if v > 1<<32-1 {
			return fmt.Errorf("wire: report tenant overflows u32: %w", ErrCorrupt)
		}
		if v == 0 {
			// Tenant 0 is always encoded untagged; a tagged zero is a frame
			// no encoder produces.
			return fmt.Errorf("wire: tenant tag carrying the default tenant: %w", ErrCorrupt)
		}
		r.Tenant, rest = uint32(v), rest[sz:]
	}
	var fields [5]uint64
	for i := range fields {
		v, sz := binary.Uvarint(rest)
		if sz <= 0 {
			return uvarintFieldErr(sz)
		}
		if v > 1<<32-1 {
			return fmt.Errorf("wire: report field %d overflows u32: %w", i, ErrCorrupt)
		}
		fields[i], rest = v, rest[sz:]
	}
	r.Iv.Origin = int(uint32(fields[0]))
	r.Iv.Seq = int(uint32(fields[1]))
	r.LinkSeq = int(uint32(fields[2]))
	r.Epoch = int(uint32(fields[3]))
	r.Iv.Agg = flags&flagAgg != 0
	spanLen := int(fields[4])
	if spanLen > MaxSpan {
		return fmt.Errorf("wire: report span of %d ids: %w", spanLen, ErrCorrupt)
	}
	if len(rest) < spanLen { // every id costs at least one byte
		return fmt.Errorf("wire: report span body: %w", ErrTruncated)
	}
	if cap(r.Iv.Span) >= spanLen {
		r.Iv.Span = r.Iv.Span[:spanLen]
	} else {
		r.Iv.Span = make([]int, spanLen)
	}
	for i := range r.Iv.Span {
		v, sz := binary.Uvarint(rest)
		if sz <= 0 {
			return uvarintFieldErr(sz)
		}
		if v > 1<<32-1 {
			return fmt.Errorf("wire: span id overflows u32: %w", ErrCorrupt)
		}
		r.Iv.Span[i], rest = int(uint32(v)), rest[sz:]
	}
	loBase := vclock.VC(nil)
	if flags&flagDeltaLo != 0 {
		if basis == nil {
			return fmt.Errorf("wire: basis-relative report without stream basis: %w", ErrCorrupt)
		}
		loBase = basis
	}
	rest, err = consumeDelta(rest, &r.Iv.Lo, loBase)
	if err != nil {
		return err
	}
	rest, err = consumeDelta(rest, &r.Iv.Hi, r.Iv.Lo)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("wire: %d trailing bytes: %w", len(rest), ErrCorrupt)
	}
	finishReport(r)
	return nil
}

// consumeDelta adapts vclock.ConsumeDelta to wire's error taxonomy.
func consumeDelta(data []byte, dst *vclock.VC, base vclock.VC) ([]byte, error) {
	rest, err := vclock.ConsumeDelta(data, dst, base)
	if err != nil {
		return nil, wrapVClockErr(err)
	}
	return rest, nil
}

// wrapVClockErr re-wraps a vclock codec error in the matching wire sentinel.
func wrapVClockErr(err error) error {
	if errors.Is(err, vclock.ErrTruncated) {
		return fmt.Errorf("wire: %v: %w", err, ErrTruncated)
	}
	return fmt.Errorf("wire: %v: %w", err, ErrCorrupt)
}

// uvarintFieldErr classifies a failed binary.Uvarint inside a frame body.
func uvarintFieldErr(sz int) error {
	if sz == 0 {
		return fmt.Errorf("wire: report field: %w", ErrTruncated)
	}
	return fmt.Errorf("wire: report field overflows varint: %w", ErrCorrupt)
}

// finishReport derives the fields not carried on the wire.
func finishReport(r *Report) {
	r.Iv.Term = nil
	r.Iv.Members = nil
	r.Iv.Bases = 1
	if r.Iv.Agg {
		// Base count is not carried on the wire; span size is the best
		// lower bound a receiver has.
		r.Iv.Bases = len(r.Iv.Span)
	}
}

// bufPool recycles encoder scratch buffers. Encoders hand frames to
// transports that never retain them past the call (transport.Transport's
// Send contract), so a small pool removes the per-message allocation
// entirely. The pool holds *[]byte, not []byte: storing a bare slice in an
// interface boxes its header on every Put, which would put one allocation
// right back on the path the pool exists to clear.
var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 512)
	return &b
}}

// GetBuffer returns a pooled scratch buffer with *buf sliced to length zero.
// Append the frame to *buf and hand the same pointer to PutBuffer once the
// frame has been copied out (transports copy on Send).
func GetBuffer() *[]byte {
	buf := bufPool.Get().(*[]byte)
	*buf = (*buf)[:0]
	return buf
}

// PutBuffer recycles a buffer obtained from GetBuffer. The caller must not
// touch *buf afterwards.
func PutBuffer(buf *[]byte) {
	if cap(*buf) > 1<<20 {
		return // drop oversized one-offs instead of pinning them in the pool
	}
	bufPool.Put(buf)
}
