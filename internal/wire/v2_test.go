package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"hierdet/internal/interval"
	"hierdet/internal/vclock"
)

func v2Report(origin, seq, linkSeq, epoch int, lo, hi vclock.VC) Report {
	iv := interval.New(origin, seq, lo, hi)
	return Report{Iv: iv, LinkSeq: linkSeq, Epoch: epoch}
}

func sameReport(t *testing.T, got, want Report, what string) {
	t.Helper()
	if !got.Iv.Lo.Equal(want.Iv.Lo) || !got.Iv.Hi.Equal(want.Iv.Hi) {
		t.Fatalf("%s: bounds differ: %v..%v vs %v..%v", what, got.Iv.Lo, got.Iv.Hi, want.Iv.Lo, want.Iv.Hi)
	}
	if got.Iv.Origin != want.Iv.Origin || got.Iv.Seq != want.Iv.Seq ||
		got.LinkSeq != want.LinkSeq || got.Epoch != want.Epoch || got.Iv.Agg != want.Iv.Agg {
		t.Fatalf("%s: identity differs: %+v vs %+v", what, got, want)
	}
	if len(got.Iv.Span) != len(want.Iv.Span) {
		t.Fatalf("%s: span differs: %v vs %v", what, got.Iv.Span, want.Iv.Span)
	}
	for i := range got.Iv.Span {
		if got.Iv.Span[i] != want.Iv.Span[i] {
			t.Fatalf("%s: span differs: %v vs %v", what, got.Iv.Span, want.Iv.Span)
		}
	}
}

func TestReportV2RoundTrip(t *testing.T) {
	r := v2Report(3, 7, 42, 6, vclock.Of(1, 2, 3, 4), vclock.Of(5, 6, 7, 8))
	data := EncodeReportV2(r)
	if len(data) != ReportSizeV2(r, nil) {
		t.Fatalf("encoded %d bytes, ReportSizeV2 says %d", len(data), ReportSizeV2(r, nil))
	}
	if ver, err := FrameVersion(data); err != nil || ver != Version2 {
		t.Fatalf("FrameVersion = %d, %v", ver, err)
	}
	if k, err := FrameKind(data); err != nil || k != KindReport {
		t.Fatalf("FrameKind = %d, %v", k, err)
	}
	back, err := DecodeReport(data)
	if err != nil {
		t.Fatal(err)
	}
	sameReport(t, back, r, "absolute")
	if back.Iv.Bases != 1 {
		t.Fatalf("Bases = %d, want 1", back.Iv.Bases)
	}
}

func TestReportV2BasisRoundTrip(t *testing.T) {
	basis := vclock.Of(1000, 2000, 3000)
	r := v2Report(1, 4, 9, 2, vclock.Of(1001, 2000, 3001), vclock.Of(1002, 2002, 3001))
	data := AppendReportV2(nil, r, basis)
	if len(data) != ReportSizeV2(r, basis) {
		t.Fatalf("encoded %d bytes, ReportSizeV2 says %d", len(data), ReportSizeV2(r, basis))
	}
	if !ReportIsDelta(data) {
		t.Fatal("basis-relative frame not flagged as delta")
	}
	// Without the basis the frame must be rejected, not misdecoded.
	if _, err := DecodeReport(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("decode without basis: %v, want ErrCorrupt", err)
	}
	var back Report
	if err := DecodeReportInto(data, &back, basis); err != nil {
		t.Fatal(err)
	}
	sameReport(t, back, r, "basis-relative")

	// A near-monotone step must beat the absolute form on the wire.
	if d, a := len(data), len(EncodeReportV2(r)); d >= a {
		t.Fatalf("delta frame (%d bytes) not smaller than absolute (%d)", d, a)
	}
	if ReportIsDelta(EncodeReportV2(r)) {
		t.Fatal("absolute frame flagged as delta")
	}
}

func TestReportV2AggregateRoundTrip(t *testing.T) {
	x := interval.New(0, 0, vclock.Of(1, 0, 0), vclock.Of(3, 2, 2))
	y := interval.New(2, 0, vclock.Of(0, 0, 1), vclock.Of(2, 2, 3))
	agg := interval.Aggregate([]interval.Interval{x, y}, 1, 5, false)
	back, err := DecodeReport(EncodeReportV2(Report{Iv: agg, LinkSeq: 3}))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Iv.Agg || len(back.Iv.Span) != 2 || back.Iv.Bases != 2 {
		t.Fatalf("aggregate identity lost: %+v", back.Iv)
	}
}

// TestCrossCodecEquivalence drives randomized near-monotone report streams
// through both codecs — v1 frames, absolute v2 frames, and basis-chained v2
// frames where each report's Lo is encoded against the previous report's Hi —
// and requires every decode to agree field-for-field.
func TestCrossCodecEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(16)
		clock := make(vclock.VC, n)
		for c := range clock {
			clock[c] = uint32(r.Intn(50))
		}
		var basis vclock.VC // receiver-side chain state
		var sendBasis vclock.VC
		var into Report // storage reused across the stream
		for step := 0; step < 10; step++ {
			lo := clock.Clone()
			hi := clock.Clone()
			for c := range hi {
				hi[c] += uint32(r.Intn(4))
			}
			clock = hi.Clone()
			for c := range clock {
				clock[c] += uint32(r.Intn(3)) // gap between intervals
			}
			rep := v2Report(r.Intn(n), step, step, trial%5, lo, hi)
			if r.Intn(3) == 0 {
				rep.Iv.Agg = true
				rep.Iv.Span = []int{0, r.Intn(n) + 1}
				rep.Iv.Bases = 2
			}

			v1, err := EncodeReport(rep)
			if err != nil {
				t.Fatal(err)
			}
			fromV1, err := DecodeReport(v1)
			if err != nil {
				t.Fatal(err)
			}
			fromV2, err := DecodeReport(EncodeReportV2(rep))
			if err != nil {
				t.Fatal(err)
			}
			sameReport(t, fromV2, fromV1, "v2-absolute vs v1")

			chained := AppendReportV2(nil, rep, sendBasis)
			if err := DecodeReportInto(chained, &into, basis); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			sameReport(t, into, fromV1, "v2-chained vs v1")
			basis = vclock.VC(append(basis[:0], into.Iv.Hi...))
			sendBasis = vclock.VC(append(sendBasis[:0], rep.Iv.Hi...))
		}
	}
}

// TestDecodeReportIntoReusesStorage proves the decode-into path is
// allocation-free in steady state: clocks and span keep their backing arrays
// across frames of the same shape, for both wire versions.
func TestDecodeReportIntoReusesStorage(t *testing.T) {
	rep := benchReport(8)
	v1, err := EncodeReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"v1", v1},
		{"v2", EncodeReportV2(rep)},
	} {
		var into Report
		if err := DecodeReportInto(tc.data, &into, nil); err != nil {
			t.Fatal(err)
		}
		pLo, pHi, pSpan := &into.Iv.Lo[0], &into.Iv.Hi[0], &into.Iv.Span[0]
		if err := DecodeReportInto(tc.data, &into, nil); err != nil {
			t.Fatal(err)
		}
		if &into.Iv.Lo[0] != pLo || &into.Iv.Hi[0] != pHi || &into.Iv.Span[0] != pSpan {
			t.Fatalf("%s: second decode reallocated storage", tc.name)
		}
		sameReport(t, into, rep, tc.name)
	}
}

func TestReportV2RejectsCorruption(t *testing.T) {
	rep := v2Report(1, 2, 3, 4, vclock.Of(5, 6), vclock.Of(7, 8))
	data := EncodeReportV2(rep)
	cases := map[string]struct {
		frame []byte
		want  error
	}{
		"short header": {data[:3], ErrTruncated},
		"bad kind":     {append([]byte{magic, verV2, 9, 0}, data[4:]...), ErrCorrupt},
		"bad flags":    {append([]byte{magic, verV2, KindReport, 0x80}, data[4:]...), ErrCorrupt},
		"truncated":    {data[:len(data)-2], ErrTruncated},
		"trailing":     {append(append([]byte{}, data...), 0x00), ErrCorrupt},
		// spanLen uvarint claiming ~2^32 ids with no bytes to back them: the
		// u32 guard fires before any allocation.
		"giant span": {append([]byte{magic, verV2, KindReport, 0, 1, 2, 3, 4, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}, 0), ErrCorrupt},
		// field overflowing 64-bit varint space entirely.
		"varint overflow": {[]byte{magic, verV2, KindReport, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, ErrCorrupt},
	}
	for name, c := range cases {
		var into Report
		err := DecodeReportInto(c.frame, &into, nil)
		if err == nil {
			t.Errorf("%s: corruption accepted", name)
			continue
		}
		if !errors.Is(err, c.want) {
			t.Errorf("%s: error %v does not wrap %v", name, err, c.want)
		}
	}
}

// TestGoldenV1Corpus pins wire compatibility: the checked-in v1 frames (see
// testdata/v1corpus/README) must decode under the unified decoder and
// re-encode with the v1 encoder byte-identically. A failure means a rolling
// upgrade would break: old nodes' frames no longer mean the same thing.
func TestGoldenV1Corpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "v1corpus", "*.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("golden corpus missing — regenerate with: go generate ./internal/wire")
	}
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var rep Report
		if err := DecodeReportInto(data, &rep, nil); err != nil {
			t.Fatalf("%s: unified decoder rejected v1 frame: %v", path, err)
		}
		again, err := EncodeReport(rep)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", path, err)
		}
		if !bytes.Equal(again, data) {
			t.Fatalf("%s: v1 round trip through unified decoder not byte-identical", path)
		}
		// And the v2 form of the same report must agree with the v1 decode.
		back, err := DecodeReport(EncodeReportV2(rep))
		if err != nil {
			t.Fatalf("%s: v2 re-encode: %v", path, err)
		}
		sameReport(t, back, rep, path)
	}
}

// FuzzDecodeReportV2 hardens the v2 report decoder: arbitrary bytes (with
// and without a stream basis) must never panic, rejections must be typed,
// and accepted frames must survive a v2 encode/decode round trip.
func FuzzDecodeReportV2(f *testing.F) {
	rep := v2Report(1, 2, 7, 1, vclock.Of(1, 0, 3), vclock.Of(4, 5, 6))
	f.Add(EncodeReportV2(rep), false)
	f.Add(AppendReportV2(nil, rep, vclock.Of(1, 0, 2)), true)
	agg := interval.Aggregate([]interval.Interval{rep.Iv}, 0, 0, false)
	f.Add(EncodeReportV2(Report{Iv: agg}), false)
	tagged := rep
	tagged.Tenant = 7
	f.Add(EncodeReportV2(tagged), false)
	tagged.Tenant = 1 << 31
	f.Add(AppendReportV2(nil, tagged, vclock.Of(1, 0, 2)), true)
	f.Add([]byte{magic, verV2, KindReport, flagTenant}, false)
	f.Add([]byte{magic, verV2, KindReport, flagTenant, 0x80}, false)
	f.Add([]byte{magic, verV2, KindReport, 0}, false)
	f.Add([]byte{}, false)
	f.Fuzz(func(t *testing.T, data []byte, withBasis bool) {
		var basis vclock.VC
		if withBasis {
			basis = vclock.Of(1, 0, 2)
		}
		var r Report
		if err := DecodeReportInto(data, &r, basis); err != nil {
			requireTyped(t, err)
			return
		}
		out := AppendReportV2(nil, r, nil)
		var r2 Report
		if err := DecodeReportInto(out, &r2, nil); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !r2.Iv.Lo.Equal(r.Iv.Lo) || !r2.Iv.Hi.Equal(r.Iv.Hi) ||
			r2.Iv.Origin != r.Iv.Origin || r2.LinkSeq != r.LinkSeq ||
			r2.Iv.Agg != r.Iv.Agg || r2.Tenant != r.Tenant {
			t.Fatal("decode/encode/decode changed the report")
		}
	})
}

func TestPooledBuffers(t *testing.T) {
	buf := GetBuffer()
	if len(*buf) != 0 {
		t.Fatalf("pooled buffer has length %d", len(*buf))
	}
	*buf = AppendReportV2(*buf, benchReport(16), nil)
	PutBuffer(buf)
	// Oversized buffers must be dropped, not pinned in the pool.
	big := make([]byte, 2<<20)
	PutBuffer(&big)
}
