// Package wire defines the binary wire format for the detector's control
// messages: interval reports (the paper's O(n)-sized messages carrying two
// vector-timestamp cuts), heartbeats, and the adoption announcement used
// after tree repair. The format is what a deployment would put on the
// network and what the experiments use to convert message counts into byte
// volumes — the paper's space/message analysis counts O(n) words per
// message, and this package makes that concrete.
//
// Layout (big endian):
//
//	report   := magic u8 | kind u8 | origin u32 | seq u32 | linkSeq u32 |
//	            epoch u32 | agg u8 | spanLen u32 | span u32[spanLen] |
//	            lo vclock | hi vclock
//	heartbeat:= magic u8 | kind u8 | sender u32
//
// Vector clocks use their own length-prefixed encoding (vclock.MarshalBinary).
package wire

import (
	"encoding/binary"
	"fmt"

	"hierdet/internal/interval"
	"hierdet/internal/vclock"
)

const magic = 0xD7

// Message kinds on the wire.
const (
	kindReport    = 1
	kindHeartbeat = 2
)

// Report is an interval report from a child to its parent (or, in the
// centralized algorithm, a raw interval being forwarded to the sink).
type Report struct {
	// Iv is the interval (base or aggregated).
	Iv interval.Interval
	// LinkSeq is the per-link sequence number used for resequencing.
	LinkSeq int
	// Epoch is the sender's reconfiguration epoch: it increments before the
	// first report after the sender's subtree membership changed, telling
	// the receiver to reset the stream's queue (succession across epochs is
	// not guaranteed).
	Epoch int
}

// EncodeReport serializes a report.
func EncodeReport(r Report) ([]byte, error) {
	lo, err := r.Iv.Lo.MarshalBinary()
	if err != nil {
		return nil, err
	}
	hi, err := r.Iv.Hi.MarshalBinary()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 2+4+4+4+4+1+4+4*len(r.Iv.Span)+len(lo)+len(hi))
	buf = append(buf, magic, kindReport)
	buf = binary.BigEndian.AppendUint32(buf, uint32(r.Iv.Origin))
	buf = binary.BigEndian.AppendUint32(buf, uint32(r.Iv.Seq))
	buf = binary.BigEndian.AppendUint32(buf, uint32(r.LinkSeq))
	buf = binary.BigEndian.AppendUint32(buf, uint32(r.Epoch))
	if r.Iv.Agg {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(r.Iv.Span)))
	for _, p := range r.Iv.Span {
		buf = binary.BigEndian.AppendUint32(buf, uint32(p))
	}
	buf = append(buf, lo...)
	buf = append(buf, hi...)
	return buf, nil
}

// DecodeReport parses a report, validating framing.
func DecodeReport(data []byte) (Report, error) {
	var r Report
	if len(data) < 2 || data[0] != magic {
		return r, fmt.Errorf("wire: bad magic")
	}
	if data[1] != kindReport {
		return r, fmt.Errorf("wire: kind %d is not a report", data[1])
	}
	rest := data[2:]
	need := func(n int) error {
		if len(rest) < n {
			return fmt.Errorf("wire: truncated report")
		}
		return nil
	}
	if err := need(17); err != nil {
		return r, err
	}
	r.Iv.Origin = int(binary.BigEndian.Uint32(rest))
	r.Iv.Seq = int(binary.BigEndian.Uint32(rest[4:]))
	r.LinkSeq = int(binary.BigEndian.Uint32(rest[8:]))
	r.Epoch = int(binary.BigEndian.Uint32(rest[12:]))
	r.Iv.Agg = rest[16] == 1
	rest = rest[17:]
	if err := need(4); err != nil {
		return r, err
	}
	spanLen := int(binary.BigEndian.Uint32(rest))
	rest = rest[4:]
	if err := need(4 * spanLen); err != nil {
		return r, err
	}
	if spanLen > 0 {
		r.Iv.Span = make([]int, spanLen)
		for i := range r.Iv.Span {
			r.Iv.Span[i] = int(binary.BigEndian.Uint32(rest[4*i:]))
		}
	}
	rest = rest[4*spanLen:]
	var lo vclock.VC
	n, err := consumeVC(rest, &lo)
	if err != nil {
		return r, err
	}
	rest = rest[n:]
	var hi vclock.VC
	n, err = consumeVC(rest, &hi)
	if err != nil {
		return r, err
	}
	rest = rest[n:]
	if len(rest) != 0 {
		return r, fmt.Errorf("wire: %d trailing bytes", len(rest))
	}
	r.Iv.Lo, r.Iv.Hi = lo, hi
	r.Iv.Bases = 1
	if r.Iv.Agg {
		// Base count is not carried on the wire; span size is the best
		// lower bound a receiver has.
		r.Iv.Bases = len(r.Iv.Span)
	}
	return r, nil
}

func consumeVC(data []byte, v *vclock.VC) (int, error) {
	if len(data) < 4 {
		return 0, fmt.Errorf("wire: truncated vector clock")
	}
	n := int(binary.BigEndian.Uint32(data))
	size := 4 + 8*n
	if len(data) < size {
		return 0, fmt.Errorf("wire: truncated vector clock body")
	}
	if err := v.UnmarshalBinary(data[:size]); err != nil {
		return 0, err
	}
	return size, nil
}

// EncodeHeartbeat serializes a heartbeat from sender.
func EncodeHeartbeat(sender int) []byte {
	buf := make([]byte, 6)
	buf[0], buf[1] = magic, kindHeartbeat
	binary.BigEndian.PutUint32(buf[2:], uint32(sender))
	return buf
}

// DecodeHeartbeat parses a heartbeat and returns the sender.
func DecodeHeartbeat(data []byte) (int, error) {
	if len(data) != 6 || data[0] != magic || data[1] != kindHeartbeat {
		return 0, fmt.Errorf("wire: bad heartbeat frame")
	}
	return int(binary.BigEndian.Uint32(data[2:])), nil
}

// ReportSize returns the encoded size in bytes of a report for an n-process
// system whose interval spans k processes: the concrete form of the paper's
// "each message has size O(n)".
func ReportSize(n, k int) int {
	return 2 + 4 + 4 + 4 + 4 + 1 + 4 + 4*k + 2*vclock.WireSize(n)
}

// HeartbeatSize is the encoded size of a heartbeat.
const HeartbeatSize = 6
