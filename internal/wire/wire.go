// Package wire defines the binary wire format for the detector's control
// messages: interval reports (the paper's O(n)-sized messages carrying two
// vector-timestamp cuts), heartbeats carrying the failure detector's
// covered-set and root-seeking state, and the four reattachment-protocol
// frames of §III-F (request/grant/confirm/abort). The format is what the TCP
// transport (internal/transport/tcptransport) puts on the network and what
// the experiments use to convert message counts into byte volumes — the
// paper's space/message analysis counts O(n) words per message, and this
// package makes that concrete.
//
// Layout (big endian):
//
//	report   := magic u8 | kind u8 | origin u32 | seq u32 | linkSeq u32 |
//	            epoch u32 | agg u8 | spanLen u32 | span u32[spanLen] |
//	            lo vclock | hi vclock
//	heartbeat:= magic u8 | kind u8 | sender u32 | epoch u32 | flags u8 |
//	            coveredLen u32 | covered u32[coveredLen]
//	attach   := magic u8 | kind u8 | from u32 | type u8 | reqID u32 |
//	            coveredLen u32 | covered u32[coveredLen]
//
// Vector clocks use their own length-prefixed encoding (vclock.MarshalBinary).
//
// Decode errors are typed so a transport can tell a corrupt frame (drop it,
// maybe reset the connection) from a short read (wait for more bytes): every
// error wraps either ErrCorrupt or ErrTruncated.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"hierdet/internal/interval"
	"hierdet/internal/repair"
	"hierdet/internal/vclock"
)

const magic = 0xD7

// Message kinds on the wire. KindReportBatch and KindTenantEnv exist only
// under v2 framing (see batch.go and tenant.go); the other kinds appear in
// both frame versions.
const (
	KindReport      = 1
	KindHeartbeat   = 2
	KindAttach      = 3
	KindReportBatch = 4
	KindTenantEnv   = 5
	KindTenantBatch = 6
)

// MaxSpan bounds the span (and covered-set) length a decoder accepts before
// allocating. Spans list process ids, so a frame claiming more members than
// any plausible deployment (or than its own byte count can back) is corrupt,
// not merely large.
const MaxSpan = 1 << 20

// Decode error categories. All decode errors wrap exactly one of these.
var (
	// ErrCorrupt marks a structurally invalid frame: bad magic, unknown
	// kind, impossible lengths, or trailing bytes. The frame can never
	// become valid; a transport should drop it.
	ErrCorrupt = errors.New("corrupt frame")
	// ErrTruncated marks a frame shorter than its fields claim. Over a
	// stream transport this can mean "read more bytes"; over a framed
	// transport it is corruption of the inner payload.
	ErrTruncated = errors.New("truncated frame")
)

// FrameKind returns the kind byte of a frame after validating the magic. It
// understands both frame versions: v1 carries the kind right after the magic,
// v2 inserts a version byte between them (see v2.go).
func FrameKind(data []byte) (byte, error) {
	if len(data) < 2 {
		return 0, fmt.Errorf("wire: frame header: %w", ErrTruncated)
	}
	if data[0] != magic {
		return 0, fmt.Errorf("wire: bad magic 0x%02x: %w", data[0], ErrCorrupt)
	}
	k := data[1]
	v2 := false
	if k == verV2 {
		if len(data) < 3 {
			return 0, fmt.Errorf("wire: frame header: %w", ErrTruncated)
		}
		k = data[2]
		v2 = true
	}
	switch {
	case k == KindReport || k == KindHeartbeat || k == KindAttach:
	case k == KindReportBatch && v2: // batch frames are v2-only
	case k == KindTenantEnv && v2: // tenant envelopes are v2-only
	case k == KindTenantBatch && v2: // tenant batch frames are v2-only
	default:
		return 0, fmt.Errorf("wire: unknown kind %d: %w", k, ErrCorrupt)
	}
	return k, nil
}

// Report is an interval report from a child to its parent (or, in the
// centralized algorithm, a raw interval being forwarded to the sink). The
// sender is not carried separately: a node only ever reports aggregates it
// created itself, so Iv.Origin identifies the sending process.
type Report struct {
	// Iv is the interval (base or aggregated).
	Iv interval.Interval
	// LinkSeq is the per-link sequence number used for resequencing.
	LinkSeq int
	// Epoch is the sender's reconfiguration epoch: it increments before the
	// first report after the sender's subtree membership changed, telling
	// the receiver to reset the stream's queue (succession across epochs is
	// not guaranteed).
	Epoch int
	// Tenant is the detection tree this report belongs to when many trees
	// share one transport (internal/tenantplane). Zero — the default, and
	// the only value v1 frames can carry — encodes untagged, byte-identical
	// to pre-tenant v2 frames; nonzero values ride a varint behind a flag
	// bit (see v2.go).
	Tenant uint32
}

// EncodeReport serializes a report.
func EncodeReport(r Report) ([]byte, error) {
	lo, err := r.Iv.Lo.MarshalBinary()
	if err != nil {
		return nil, err
	}
	hi, err := r.Iv.Hi.MarshalBinary()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 2+4+4+4+4+1+4+4*len(r.Iv.Span)+len(lo)+len(hi))
	buf = append(buf, magic, KindReport)
	buf = binary.BigEndian.AppendUint32(buf, uint32(r.Iv.Origin))
	buf = binary.BigEndian.AppendUint32(buf, uint32(r.Iv.Seq))
	buf = binary.BigEndian.AppendUint32(buf, uint32(r.LinkSeq))
	buf = binary.BigEndian.AppendUint32(buf, uint32(r.Epoch))
	if r.Iv.Agg {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = appendIDs(buf, r.Iv.Span)
	buf = append(buf, lo...)
	buf = append(buf, hi...)
	return buf, nil
}

// DecodeReport parses a report of either wire version, validating framing.
// It accepts only self-contained frames (a basis-relative v2 frame needs its
// stream basis — use DecodeReportInto) and always returns fresh storage.
func DecodeReport(data []byte) (Report, error) {
	var r Report
	err := DecodeReportInto(data, &r, nil)
	return r, err
}

// decodeReportV1 parses a fixed-width v1 report into *r, reusing r's clock
// and span backing arrays when they have capacity.
func decodeReportV1(data []byte, r *Report) error {
	rest, err := frameBody(data, KindReport, "report")
	if err != nil {
		return err
	}
	if len(rest) < 17 {
		return fmt.Errorf("wire: report header: %w", ErrTruncated)
	}
	r.Iv.Origin = int(binary.BigEndian.Uint32(rest))
	r.Iv.Seq = int(binary.BigEndian.Uint32(rest[4:]))
	r.LinkSeq = int(binary.BigEndian.Uint32(rest[8:]))
	r.Epoch = int(binary.BigEndian.Uint32(rest[12:]))
	r.Tenant = 0 // v1 predates tenant tagging: always the default tenant
	r.Iv.Agg = rest[16] == 1
	rest = rest[17:]
	r.Iv.Span, rest, err = consumeIDsInto(r.Iv.Span, rest, "report span")
	if err != nil {
		return err
	}
	rest, err = consumeVC(rest, &r.Iv.Lo)
	if err != nil {
		return err
	}
	rest, err = consumeVC(rest, &r.Iv.Hi)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("wire: %d trailing bytes: %w", len(rest), ErrCorrupt)
	}
	finishReport(r)
	return nil
}

// consumeVC reads one length-prefixed fixed-width clock into *v (reusing its
// backing array when possible) and returns the remaining bytes.
func consumeVC(data []byte, v *vclock.VC) ([]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("wire: vector clock header: %w", ErrTruncated)
	}
	if n := int(binary.BigEndian.Uint32(data)); n > MaxSpan {
		return nil, fmt.Errorf("wire: vector clock of %d components: %w", n, ErrCorrupt)
	}
	rest, err := vclock.ConsumeBinary(data, v)
	if err != nil {
		return nil, wrapVClockErr(err)
	}
	return rest, nil
}

// Heartbeat is one liveness beacon between tree neighbours. Beyond "I am
// alive" it carries the state the distributed repair protocol needs
// (simulator and live runtime alike maintain it this way):
//
//   - Epoch, the sender's current reconfiguration epoch, so a parent can
//     notice a child's stream restarted even between reports;
//   - Covered, the sender's covered set — itself plus the last covered set
//     each of its children reported — meaningful on child→parent beats,
//     where it feeds the receiver's own covered set and the
//     inside-my-subtree test of adoption requests;
//   - RootSeeking, meaningful on parent→child beats: the sender's tree root
//     is currently renegotiating a parent, so the whole tree is dangling
//     and must refuse adoptions or two orphan trees could adopt into each
//     other and close a cycle.
type Heartbeat struct {
	Sender      int
	Epoch       int
	RootSeeking bool
	Covered     []int
}

const hbFlagRootSeeking = 1

// EncodeHeartbeat serializes a heartbeat.
func EncodeHeartbeat(hb Heartbeat) []byte {
	buf := make([]byte, 0, HeartbeatSize+4*len(hb.Covered))
	buf = append(buf, magic, KindHeartbeat)
	buf = binary.BigEndian.AppendUint32(buf, uint32(hb.Sender))
	buf = binary.BigEndian.AppendUint32(buf, uint32(hb.Epoch))
	var flags byte
	if hb.RootSeeking {
		flags |= hbFlagRootSeeking
	}
	buf = append(buf, flags)
	return appendIDs(buf, hb.Covered)
}

// DecodeHeartbeat parses a heartbeat.
func DecodeHeartbeat(data []byte) (Heartbeat, error) {
	var hb Heartbeat
	rest, err := frameBody(data, KindHeartbeat, "heartbeat")
	if err != nil {
		return hb, err
	}
	if len(rest) < 9 {
		return hb, fmt.Errorf("wire: heartbeat header: %w", ErrTruncated)
	}
	hb.Sender = int(binary.BigEndian.Uint32(rest))
	hb.Epoch = int(binary.BigEndian.Uint32(rest[4:]))
	flags := rest[8]
	if flags&^hbFlagRootSeeking != 0 {
		return hb, fmt.Errorf("wire: heartbeat flags 0x%02x: %w", flags, ErrCorrupt)
	}
	hb.RootSeeking = flags&hbFlagRootSeeking != 0
	hb.Covered, rest, err = consumeIDs(rest[9:], "heartbeat covered set")
	if err != nil {
		return hb, err
	}
	if len(rest) != 0 {
		return hb, fmt.Errorf("wire: %d trailing bytes: %w", len(rest), ErrCorrupt)
	}
	return hb, nil
}

// Attach is one reattachment-protocol frame (§III-F): the seeker's adoption
// request with its covered set, and the grant/confirm/abort frames that
// resolve it (see internal/repair for the protocol).
type Attach struct {
	// From is the sending process.
	From int
	// Msg is the protocol message (Type, ReqID, Covered on requests).
	Msg repair.Msg
}

// EncodeAttach serializes an attach-protocol frame.
func EncodeAttach(a Attach) []byte {
	buf := make([]byte, 0, AttachSize+4*len(a.Msg.Covered))
	buf = append(buf, magic, KindAttach)
	buf = binary.BigEndian.AppendUint32(buf, uint32(a.From))
	buf = append(buf, byte(a.Msg.Type))
	buf = binary.BigEndian.AppendUint32(buf, uint32(a.Msg.ReqID))
	return appendIDs(buf, a.Msg.Covered)
}

// DecodeAttach parses an attach-protocol frame.
func DecodeAttach(data []byte) (Attach, error) {
	var a Attach
	rest, err := frameBody(data, KindAttach, "attach")
	if err != nil {
		return a, err
	}
	if len(rest) < 9 {
		return a, fmt.Errorf("wire: attach header: %w", ErrTruncated)
	}
	a.From = int(binary.BigEndian.Uint32(rest))
	typ := repair.MsgType(rest[4])
	if typ < repair.Req || typ > repair.Abort {
		return a, fmt.Errorf("wire: attach type %d: %w", rest[4], ErrCorrupt)
	}
	a.Msg.Type = typ
	a.Msg.ReqID = int(binary.BigEndian.Uint32(rest[5:]))
	a.Msg.Covered, rest, err = consumeIDs(rest[9:], "attach covered set")
	if err != nil {
		return a, err
	}
	if len(rest) != 0 {
		return a, fmt.Errorf("wire: %d trailing bytes: %w", len(rest), ErrCorrupt)
	}
	return a, nil
}

// frameBody validates the two-byte header against want and returns the body.
func frameBody(data []byte, want byte, what string) ([]byte, error) {
	k, err := FrameKind(data)
	if err != nil {
		return nil, err
	}
	if k != want {
		return nil, fmt.Errorf("wire: kind %d is not a %s: %w", k, what, ErrCorrupt)
	}
	return data[2:], nil
}

// appendIDs writes a length-prefixed process-id list.
func appendIDs(buf []byte, ids []int) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(ids)))
	for _, p := range ids {
		buf = binary.BigEndian.AppendUint32(buf, uint32(p))
	}
	return buf
}

// consumeIDs reads a length-prefixed process-id list, rejecting lengths the
// remaining bytes cannot back before allocating anything.
func consumeIDs(data []byte, what string) ([]int, []byte, error) {
	return consumeIDsInto(nil, data, what)
}

// consumeIDsInto is consumeIDs reusing dst's backing array when it has
// capacity; a non-empty list read into an empty dst still allocates.
func consumeIDsInto(dst []int, data []byte, what string) ([]int, []byte, error) {
	if len(data) < 4 {
		return dst, nil, fmt.Errorf("wire: %s length: %w", what, ErrTruncated)
	}
	n := int(binary.BigEndian.Uint32(data))
	data = data[4:]
	if n > MaxSpan {
		return dst, nil, fmt.Errorf("wire: %s of %d ids: %w", what, n, ErrCorrupt)
	}
	if len(data) < 4*n {
		return dst, nil, fmt.Errorf("wire: %s body: %w", what, ErrTruncated)
	}
	ids := dst[:0]
	if n == 0 {
		// Preserve the historical "empty list decodes as nil" shape when the
		// caller brought no storage.
		if dst == nil {
			ids = nil
		}
	} else if cap(ids) < n {
		ids = make([]int, n)
	} else {
		ids = ids[:n]
	}
	for i := 0; i < n; i++ {
		ids[i] = int(binary.BigEndian.Uint32(data[4*i:]))
	}
	return ids, data[4*n:], nil
}

// ReportSize returns the encoded size in bytes of a report for an n-process
// system whose interval spans k processes: the concrete form of the paper's
// "each message has size O(n)".
func ReportSize(n, k int) int {
	return 2 + 4 + 4 + 4 + 4 + 1 + 4 + 4*k + 2*vclock.WireSize(n)
}

// HeartbeatSize is the encoded size of a heartbeat with an empty covered
// set; HeartbeatWireSize accounts for one carrying k covered ids.
const HeartbeatSize = 2 + 4 + 4 + 1 + 4

// HeartbeatWireSize returns the encoded size of a heartbeat whose covered
// set lists k processes.
func HeartbeatWireSize(k int) int { return HeartbeatSize + 4*k }

// AttachSize is the encoded size of an attach frame with an empty covered
// set; AttachWireSize accounts for a request carrying k covered ids.
const AttachSize = 2 + 4 + 1 + 4 + 4

// AttachWireSize returns the encoded size of an attach frame whose covered
// set lists k processes.
func AttachWireSize(k int) int { return AttachSize + 4*k }
