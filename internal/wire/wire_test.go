package wire

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"

	"hierdet/internal/interval"
	"hierdet/internal/repair"
	"hierdet/internal/vclock"
)

func TestReportRoundTrip(t *testing.T) {
	iv := interval.New(3, 7, vclock.Of(1, 2, 3, 4), vclock.Of(5, 6, 7, 8))
	data, err := EncodeReport(Report{Iv: iv, LinkSeq: 42, Epoch: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != ReportSize(4, 1) {
		t.Fatalf("encoded %d bytes, ReportSize says %d", len(data), ReportSize(4, 1))
	}
	back, err := DecodeReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.LinkSeq != 42 || back.Epoch != 6 || back.Iv.Origin != 3 || back.Iv.Seq != 7 || back.Iv.Agg {
		t.Fatalf("identity lost: %+v", back)
	}
	if !back.Iv.Lo.Equal(iv.Lo) || !back.Iv.Hi.Equal(iv.Hi) {
		t.Fatal("bounds lost")
	}
	if len(back.Iv.Span) != 1 || back.Iv.Span[0] != 3 {
		t.Fatalf("span lost: %v", back.Iv.Span)
	}
}

func TestAggregateReportRoundTrip(t *testing.T) {
	x := interval.New(0, 0, vclock.Of(1, 0, 0), vclock.Of(3, 2, 2))
	y := interval.New(2, 0, vclock.Of(0, 0, 1), vclock.Of(2, 2, 3))
	agg := interval.Aggregate([]interval.Interval{x, y}, 1, 5, false)
	data, err := EncodeReport(Report{Iv: agg, LinkSeq: 0})
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Iv.Agg || len(back.Iv.Span) != 2 || back.Iv.Bases != 2 {
		t.Fatalf("aggregate identity lost: %+v", back.Iv)
	}
	if !interval.Overlap(back.Iv, agg) {
		t.Fatal("decoded aggregate does not overlap itself")
	}
}

func TestQuickReportRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		n := 1 + r.Intn(16)
		lo := make(vclock.VC, n)
		hi := make(vclock.VC, n)
		for c := range lo {
			lo[c] = uint32(r.Intn(1000))
			hi[c] = lo[c] + uint32(r.Intn(1000))
		}
		iv := interval.New(r.Intn(n), r.Intn(100), lo, hi)
		data, err := EncodeReport(Report{Iv: iv, LinkSeq: r.Intn(1 << 20)})
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecodeReport(data)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !back.Iv.Lo.Equal(iv.Lo) || !back.Iv.Hi.Equal(iv.Hi) || back.Iv.Origin != iv.Origin {
			t.Fatalf("trial %d: round trip lost data", trial)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	iv := interval.New(0, 0, vclock.Of(1, 2), vclock.Of(3, 4))
	data, _ := EncodeReport(Report{Iv: iv})
	cases := map[string]struct {
		frame []byte
		want  error
	}{
		"empty":     {[]byte{}, ErrTruncated},
		"magic":     {append([]byte{0x00}, data[1:]...), ErrCorrupt},
		"kind":      {append([]byte{magic, 9}, data[2:]...), ErrCorrupt},
		"truncated": {data[:len(data)-3], ErrTruncated},
		"trailing":  {append(append([]byte{}, data...), 0xFF), ErrCorrupt},
	}
	for name, c := range cases {
		_, err := DecodeReport(c.frame)
		if err == nil {
			t.Errorf("%s: corruption accepted", name)
			continue
		}
		if !errors.Is(err, c.want) {
			t.Errorf("%s: error %v does not wrap %v", name, err, c.want)
		}
	}
}

// TestDecodeRejectsOversizedSpanBeforeAllocating: a frame whose span length
// claims more ids than MaxSpan (or than its bytes can back) must be rejected
// as corrupt without a giant allocation.
func TestDecodeRejectsOversizedSpanBeforeAllocating(t *testing.T) {
	iv := interval.New(0, 0, vclock.Of(1, 2), vclock.Of(3, 4))
	data, _ := EncodeReport(Report{Iv: iv})
	// spanLen sits at offset 19 (2 header + 17 fixed report fields).
	huge := append([]byte{}, data...)
	binary.BigEndian.PutUint32(huge[19:], uint32(MaxSpan+1))
	if _, err := DecodeReport(huge); !errors.Is(err, ErrCorrupt) {
		t.Errorf("oversized span error = %v, want ErrCorrupt", err)
	}
	short := append([]byte{}, data...)
	binary.BigEndian.PutUint32(short[19:], 1000) // more ids than bytes remain
	if _, err := DecodeReport(short); !errors.Is(err, ErrTruncated) {
		t.Errorf("unbacked span error = %v, want ErrTruncated", err)
	}
}

func TestHeartbeatRoundTrip(t *testing.T) {
	hb := Heartbeat{Sender: 12345, Epoch: 7, RootSeeking: true, Covered: []int{3, 4, 9}}
	data := EncodeHeartbeat(hb)
	if len(data) != HeartbeatWireSize(3) {
		t.Fatalf("size %d, want %d", len(data), HeartbeatWireSize(3))
	}
	back, err := DecodeHeartbeat(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Sender != 12345 || back.Epoch != 7 || !back.RootSeeking {
		t.Fatalf("identity lost: %+v", back)
	}
	if len(back.Covered) != 3 || back.Covered[0] != 3 || back.Covered[2] != 9 {
		t.Fatalf("covered set lost: %v", back.Covered)
	}
	if plain := EncodeHeartbeat(Heartbeat{Sender: 1}); len(plain) != HeartbeatSize {
		t.Fatalf("empty heartbeat size %d, want %d", len(plain), HeartbeatSize)
	}
	if _, err := DecodeHeartbeat(data[:3]); !errors.Is(err, ErrTruncated) {
		t.Errorf("short heartbeat error = %v, want ErrTruncated", err)
	}
	if _, err := DecodeHeartbeat(EncodeReport0()); !errors.Is(err, ErrCorrupt) {
		t.Error("report frame accepted as heartbeat")
	}
	if _, err := DecodeHeartbeat(append(append([]byte{}, data...), 1)); !errors.Is(err, ErrCorrupt) {
		t.Error("trailing bytes accepted")
	}
}

func TestAttachRoundTrip(t *testing.T) {
	for _, typ := range []repair.MsgType{repair.Req, repair.Grant, repair.Confirm, repair.Abort} {
		a := Attach{From: 42, Msg: repair.Msg{Type: typ, ReqID: 17}}
		if typ == repair.Req {
			a.Msg.Covered = []int{2, 5, 6}
		}
		data := EncodeAttach(a)
		if want := AttachWireSize(len(a.Msg.Covered)); len(data) != want {
			t.Fatalf("%v: size %d, want %d", typ, len(data), want)
		}
		back, err := DecodeAttach(data)
		if err != nil {
			t.Fatalf("%v: %v", typ, err)
		}
		if back.From != 42 || back.Msg.Type != typ || back.Msg.ReqID != 17 {
			t.Fatalf("%v: identity lost: %+v", typ, back)
		}
		if len(back.Msg.Covered) != len(a.Msg.Covered) {
			t.Fatalf("%v: covered lost: %v", typ, back.Msg.Covered)
		}
		if k, err := FrameKind(data); err != nil || k != KindAttach {
			t.Fatalf("%v: FrameKind = %d, %v", typ, k, err)
		}
	}
}

func TestAttachRejectsCorruption(t *testing.T) {
	data := EncodeAttach(Attach{From: 1, Msg: repair.Msg{Type: repair.Grant, ReqID: 2}})
	bad := append([]byte{}, data...)
	bad[6] = 200 // invalid MsgType
	if _, err := DecodeAttach(bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("invalid type error = %v, want ErrCorrupt", err)
	}
	if _, err := DecodeAttach(data[:7]); !errors.Is(err, ErrTruncated) {
		t.Errorf("short attach error = %v, want ErrTruncated", err)
	}
	if _, err := DecodeAttach(EncodeHeartbeat(Heartbeat{Sender: 1})); !errors.Is(err, ErrCorrupt) {
		t.Error("heartbeat frame accepted as attach")
	}
}

// EncodeReport0 builds a minimal report frame for cross-kind tests.
func EncodeReport0() []byte {
	iv := interval.New(0, 0, vclock.Of(1), vclock.Of(2))
	data, _ := EncodeReport(Report{Iv: iv})
	return data[:6]
}

func TestReportSizeIsLinearInN(t *testing.T) {
	// The paper's message-size claim: O(n) words per message.
	base := ReportSize(10, 1)
	double := ReportSize(20, 1)
	if double-base != 2*8*10 {
		t.Fatalf("size growth %d, want %d (two clocks × 10 components × 8 bytes)", double-base, 160)
	}
}
