package wire

import (
	"math/rand"
	"testing"

	"hierdet/internal/interval"
	"hierdet/internal/vclock"
)

func TestReportRoundTrip(t *testing.T) {
	iv := interval.New(3, 7, vclock.Of(1, 2, 3, 4), vclock.Of(5, 6, 7, 8))
	data, err := EncodeReport(Report{Iv: iv, LinkSeq: 42, Epoch: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != ReportSize(4, 1) {
		t.Fatalf("encoded %d bytes, ReportSize says %d", len(data), ReportSize(4, 1))
	}
	back, err := DecodeReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.LinkSeq != 42 || back.Epoch != 6 || back.Iv.Origin != 3 || back.Iv.Seq != 7 || back.Iv.Agg {
		t.Fatalf("identity lost: %+v", back)
	}
	if !back.Iv.Lo.Equal(iv.Lo) || !back.Iv.Hi.Equal(iv.Hi) {
		t.Fatal("bounds lost")
	}
	if len(back.Iv.Span) != 1 || back.Iv.Span[0] != 3 {
		t.Fatalf("span lost: %v", back.Iv.Span)
	}
}

func TestAggregateReportRoundTrip(t *testing.T) {
	x := interval.New(0, 0, vclock.Of(1, 0, 0), vclock.Of(3, 2, 2))
	y := interval.New(2, 0, vclock.Of(0, 0, 1), vclock.Of(2, 2, 3))
	agg := interval.Aggregate([]interval.Interval{x, y}, 1, 5, false)
	data, err := EncodeReport(Report{Iv: agg, LinkSeq: 0})
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Iv.Agg || len(back.Iv.Span) != 2 || back.Iv.Bases != 2 {
		t.Fatalf("aggregate identity lost: %+v", back.Iv)
	}
	if !interval.Overlap(back.Iv, agg) {
		t.Fatal("decoded aggregate does not overlap itself")
	}
}

func TestQuickReportRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		n := 1 + r.Intn(16)
		lo := make(vclock.VC, n)
		hi := make(vclock.VC, n)
		for c := range lo {
			lo[c] = uint64(r.Intn(1000))
			hi[c] = lo[c] + uint64(r.Intn(1000))
		}
		iv := interval.New(r.Intn(n), r.Intn(100), lo, hi)
		data, err := EncodeReport(Report{Iv: iv, LinkSeq: r.Intn(1 << 20)})
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecodeReport(data)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !back.Iv.Lo.Equal(iv.Lo) || !back.Iv.Hi.Equal(iv.Hi) || back.Iv.Origin != iv.Origin {
			t.Fatalf("trial %d: round trip lost data", trial)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	iv := interval.New(0, 0, vclock.Of(1, 2), vclock.Of(3, 4))
	data, _ := EncodeReport(Report{Iv: iv})
	cases := map[string][]byte{
		"empty":     {},
		"magic":     append([]byte{0x00}, data[1:]...),
		"kind":      append([]byte{magic, 9}, data[2:]...),
		"truncated": data[:len(data)-3],
		"trailing":  append(append([]byte{}, data...), 0xFF),
	}
	for name, c := range cases {
		if _, err := DecodeReport(c); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}
}

func TestHeartbeatRoundTrip(t *testing.T) {
	data := EncodeHeartbeat(12345)
	if len(data) != HeartbeatSize {
		t.Fatalf("size %d", len(data))
	}
	sender, err := DecodeHeartbeat(data)
	if err != nil || sender != 12345 {
		t.Fatalf("sender %d err %v", sender, err)
	}
	if _, err := DecodeHeartbeat(data[:3]); err == nil {
		t.Error("short heartbeat accepted")
	}
	if _, err := DecodeHeartbeat(EncodeReport0()); err == nil {
		t.Error("report frame accepted as heartbeat")
	}
}

// EncodeReport0 builds a minimal report frame for cross-kind tests.
func EncodeReport0() []byte {
	iv := interval.New(0, 0, vclock.Of(1), vclock.Of(2))
	data, _ := EncodeReport(Report{Iv: iv})
	return data[:6]
}

func TestReportSizeIsLinearInN(t *testing.T) {
	// The paper's message-size claim: O(n) words per message.
	base := ReportSize(10, 1)
	double := ReportSize(20, 1)
	if double-base != 2*8*10 {
		t.Fatalf("size growth %d, want %d (two clocks × 10 components × 8 bytes)", double-base, 160)
	}
}
