package workload

import (
	"fmt"
	"math/rand"

	"hierdet/internal/interval"
	"hierdet/internal/procsim"
	"hierdet/internal/vclock"
)

// ChaoticConfig parameterizes GenerateChaotic.
type ChaoticConfig struct {
	// N is the number of processes.
	N int
	// Steps is the total number of scheduler steps (events across all
	// processes).
	Steps int
	// Seed fixes the schedule.
	Seed int64
	// PToggle is the per-step probability that the chosen process flips its
	// local predicate before the event (default 0.3).
	PToggle float64
	// PSend is the per-step probability that the event is a message send to
	// a random peer (default 0.3); pending messages are received by their
	// destinations at random later steps.
	PSend float64
}

// GenerateChaotic produces an execution with unstructured causality: a random
// interleaving of internal events, sends, receives and predicate flips. No
// ground truth accompanies it — overlap sets arise (or not) by accident —
// which is exactly its purpose: cross-validating the hierarchical detector
// against the flat reference on executions neither was tuned for. Rounds is
// left nil; per-process interval streams follow the succession order.
func GenerateChaotic(cfg ChaoticConfig) *Execution {
	if cfg.N <= 0 || cfg.Steps <= 0 {
		panic(fmt.Sprintf("workload: invalid chaotic config n=%d steps=%d", cfg.N, cfg.Steps))
	}
	if cfg.PToggle == 0 {
		cfg.PToggle = 0.3
	}
	if cfg.PSend == 0 {
		cfg.PSend = 0.3
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	exec := &Execution{N: cfg.N, Streams: make([][]interval.Interval, cfg.N)}
	procs := make([]*procsim.Process, cfg.N)
	for i := 0; i < cfg.N; i++ {
		i := i
		procs[i] = procsim.New(i, cfg.N, func(iv interval.Interval) {
			exec.Streams[i] = append(exec.Streams[i], iv)
		})
	}

	type pending struct {
		to    int
		stamp vclock.VC
	}
	var inflight []pending

	for step := 0; step < cfg.Steps; step++ {
		p := r.Intn(cfg.N)
		if r.Float64() < cfg.PToggle {
			procs[p].SetPredicate(!procs[p].Predicate())
		}
		roll := r.Float64()
		switch {
		case roll < cfg.PSend:
			to := r.Intn(cfg.N - 1)
			if to >= p {
				to++
			}
			inflight = append(inflight, pending{to: to, stamp: procs[p].PrepareSend()})
		case len(inflight) > 0 && roll < cfg.PSend+0.3:
			// Deliver a random in-flight message (channels are non-FIFO).
			k := r.Intn(len(inflight))
			m := inflight[k]
			inflight[k] = inflight[len(inflight)-1]
			inflight = inflight[:len(inflight)-1]
			procs[m.to].Receive(m.stamp)
		default:
			procs[p].Internal()
		}
	}
	// Drain remaining messages so causality completes, then close intervals.
	for _, m := range inflight {
		procs[m.to].Receive(m.stamp)
	}
	for _, p := range procs {
		p.SetPredicate(false)
		p.Internal()
		p.Finish()
	}
	return exec
}
