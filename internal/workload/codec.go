package workload

import (
	"encoding/json"
	"fmt"

	"hierdet/internal/interval"
	"hierdet/internal/vclock"
)

// The JSON trace format stores a full execution so experiments can be
// re-run, diffed across detector versions, or inspected by hand. It is a
// faithful dump: per-process interval streams in succession order plus the
// per-round ground truth.

type executionJSON struct {
	N       int              `json:"n"`
	Streams [][]intervalJSON `json:"streams"`
	Rounds  []roundJSON      `json:"rounds,omitempty"`
}

type intervalJSON struct {
	Origin int      `json:"origin"`
	Seq    int      `json:"seq"`
	Lo     []uint32 `json:"lo"`
	Hi     []uint32 `json:"hi"`
	Term   []uint32 `json:"term,omitempty"`
}

type roundJSON struct {
	Kind   string  `json:"kind"`
	Depth  int     `json:"depth,omitempty"`
	Groups [][]int `json:"groups"`
}

// MarshalJSON implements json.Marshaler for Execution.
func (e *Execution) MarshalJSON() ([]byte, error) {
	out := executionJSON{N: e.N, Streams: make([][]intervalJSON, len(e.Streams))}
	for p, s := range e.Streams {
		out.Streams[p] = make([]intervalJSON, len(s))
		for k, iv := range s {
			out.Streams[p][k] = intervalJSON{
				Origin: iv.Origin, Seq: iv.Seq,
				Lo:   append([]uint32(nil), iv.Lo...),
				Hi:   append([]uint32(nil), iv.Hi...),
				Term: append([]uint32(nil), iv.Term...),
			}
		}
	}
	for _, r := range e.Rounds {
		out.Rounds = append(out.Rounds, roundJSON{
			Kind: r.Kind.String(), Depth: r.Depth, Groups: r.Groups,
		})
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler for Execution, validating the
// trace's internal consistency (clock sizes, origins, succession order).
func (e *Execution) UnmarshalJSON(data []byte) error {
	var in executionJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if in.N <= 0 || len(in.Streams) != in.N {
		return fmt.Errorf("workload: trace has n=%d but %d streams", in.N, len(in.Streams))
	}
	out := Execution{N: in.N, Streams: make([][]interval.Interval, in.N)}
	for p, s := range in.Streams {
		for k, ivj := range s {
			if len(ivj.Lo) != in.N || len(ivj.Hi) != in.N {
				return fmt.Errorf("workload: interval %d of process %d has clock size %d/%d, want %d",
					k, p, len(ivj.Lo), len(ivj.Hi), in.N)
			}
			if ivj.Origin != p {
				return fmt.Errorf("workload: interval %d in stream %d claims origin %d", k, p, ivj.Origin)
			}
			iv := interval.New(ivj.Origin, ivj.Seq, vclock.VC(ivj.Lo), vclock.VC(ivj.Hi))
			if len(ivj.Term) > 0 {
				if len(ivj.Term) != in.N {
					return fmt.Errorf("workload: interval %d of process %d has term size %d, want %d",
						k, p, len(ivj.Term), in.N)
				}
				iv.Term = vclock.VC(ivj.Term)
			}
			if !iv.WellFormed() {
				return fmt.Errorf("workload: interval %d of process %d is ill-formed", k, p)
			}
			if k > 0 && !out.Streams[p][k-1].Hi.Less(iv.Lo) {
				return fmt.Errorf("workload: stream %d violates succession at interval %d", p, k)
			}
			out.Streams[p] = append(out.Streams[p], iv)
		}
	}
	for i, rj := range in.Rounds {
		var kind Kind
		switch rj.Kind {
		case "global":
			kind = Global
		case "group":
			kind = Group
		case "isolated":
			kind = Isolated
		case "subset":
			kind = Subset
		default:
			return fmt.Errorf("workload: round %d has unknown kind %q", i, rj.Kind)
		}
		out.Rounds = append(out.Rounds, Round{Kind: kind, Depth: rj.Depth, Groups: rj.Groups})
	}
	*e = out
	return nil
}
