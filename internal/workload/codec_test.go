package workload

import (
	"encoding/json"
	"strings"
	"testing"

	"hierdet/internal/tree"
)

func TestExecutionJSONRoundTrip(t *testing.T) {
	tp := tree.Balanced(2, 2)
	orig := Generate(Config{Topology: tp, Rounds: 8, Seed: 1, PGlobal: 0.5, PGroup: 0.25})
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Execution
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.N != orig.N || len(back.Rounds) != len(orig.Rounds) {
		t.Fatalf("shape lost: n=%d rounds=%d", back.N, len(back.Rounds))
	}
	for p := range orig.Streams {
		if len(back.Streams[p]) != len(orig.Streams[p]) {
			t.Fatalf("stream %d length lost", p)
		}
		for k := range orig.Streams[p] {
			a, b := orig.Streams[p][k], back.Streams[p][k]
			if !a.Lo.Equal(b.Lo) || !a.Hi.Equal(b.Hi) || a.Seq != b.Seq {
				t.Fatalf("interval %d/%d lost", p, k)
			}
		}
	}
	for i := range orig.Rounds {
		if back.Rounds[i].Kind != orig.Rounds[i].Kind {
			t.Fatalf("round %d kind lost", i)
		}
	}
}

func TestExecutionJSONRoundTripChaotic(t *testing.T) {
	orig := GenerateChaotic(ChaoticConfig{N: 5, Steps: 300, Seed: 2})
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Execution
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.TotalIntervals() != orig.TotalIntervals() {
		t.Fatalf("interval counts differ: %d vs %d", back.TotalIntervals(), orig.TotalIntervals())
	}
}

func TestExecutionJSONValidation(t *testing.T) {
	cases := map[string]string{
		"bad-n":       `{"n":0,"streams":[]}`,
		"stream-miss": `{"n":2,"streams":[[]]}`,
		"clock-size":  `{"n":2,"streams":[[{"origin":0,"seq":0,"lo":[1],"hi":[2]}],[]]}`,
		"origin":      `{"n":1,"streams":[[{"origin":9,"seq":0,"lo":[1],"hi":[2]}]]}`,
		"ill-formed":  `{"n":1,"streams":[[{"origin":0,"seq":0,"lo":[5],"hi":[2]}]]}`,
		"succession":  `{"n":1,"streams":[[{"origin":0,"seq":0,"lo":[1],"hi":[4]},{"origin":0,"seq":1,"lo":[3],"hi":[6]}]]}`,
		"round-kind":  `{"n":1,"streams":[[]],"rounds":[{"kind":"bogus","groups":[]}]}`,
	}
	for name, raw := range cases {
		var e Execution
		err := json.Unmarshal([]byte(raw), &e)
		if err == nil {
			t.Errorf("%s: accepted", name)
		} else if strings.Contains(err.Error(), "panic") {
			t.Errorf("%s: paniced instead of erroring", name)
		}
	}
}
