package workload

import (
	"sort"
	"testing"

	"hierdet/internal/interval"
	"hierdet/internal/tree"
)

func TestSubsetRoundsOverlapWithinSubsetOnly(t *testing.T) {
	tp := tree.Balanced(2, 2)
	e := Generate(Config{Topology: tp, Rounds: 30, Seed: 8, PSubset: 1})
	for r, round := range e.Rounds {
		if round.Kind != Subset {
			t.Fatalf("round %d kind = %v", r, round.Kind)
		}
		subset := round.Groups[0]
		if len(subset) < 2 || len(subset) > e.N-1 {
			t.Fatalf("round %d subset size %d out of [2, n-1]", r, len(subset))
		}
		var set []interval.Interval
		member := make(map[int]bool, len(subset))
		for _, p := range subset {
			member[p] = true
			set = append(set, e.Streams[p][r])
		}
		if !interval.OverlapAll(set) {
			t.Fatalf("round %d: subset does not overlap", r)
		}
		for i := 0; i < e.N; i++ {
			for j := 0; j < e.N; j++ {
				if i != j && (!member[i] || !member[j]) {
					if interval.Overlap(e.Streams[i][r], e.Streams[j][r]) {
						t.Fatalf("round %d: overlap leaked outside the subset (%d,%d)", r, i, j)
					}
				}
			}
		}
		// Every process produced exactly one interval this round.
		total := len(subset)
		for _, g := range round.Groups[1:] {
			total += len(g)
		}
		if total != e.N {
			t.Fatalf("round %d covers %d of %d processes", r, total, e.N)
		}
	}
}

func TestSubsetRoundsDetectionGroundTruth(t *testing.T) {
	// A node detects in a subset round iff its entire subtree fell inside
	// the subset — ExpectedDetections must reflect that.
	tp := tree.Balanced(2, 2)
	e := Generate(Config{Topology: tp, Rounds: 50, Seed: 9, PSubset: 0.8, PGlobal: 0.2})
	span := tp.Subtree(1) // {1,3,4}
	sort.Ints(span)
	want := 0
	for _, round := range e.Rounds {
		switch round.Kind {
		case Global:
			want++
		case Subset:
			if containsAll(round.Groups[0], span) {
				want++
			}
		}
	}
	if got := e.ExpectedDetections(span); got != want {
		t.Fatalf("ExpectedDetections = %d, want %d", got, want)
	}
}

func TestSubsetKindString(t *testing.T) {
	if Subset.String() != "subset" {
		t.Fatal("Subset.String broken")
	}
}
