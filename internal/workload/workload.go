// Package workload generates distributed executions with controllable
// predicate behaviour, substituting for the production monitoring workloads
// (WSN telemetry, modular-robot coordination) the paper motivates but does
// not publish. An execution proceeds in rounds; in each round every process
// produces exactly one local-predicate interval, so the paper's parameter p
// (maximum intervals per process) equals the round count.
//
// Round kinds control where Definitely(Φ) holds:
//
//   - Global pulse: all n processes synchronize through a coordinator
//     (start interval → report started → coordinator acks → end interval),
//     making every pair of intervals overlap. One root-level detection.
//   - Group pulse at depth L: every subtree rooted at depth L pulses
//     internally with no cross-group messages, so the predicate holds inside
//     each depth-L subtree but nowhere above — exercising the hierarchy's
//     partial/group-level detection and driving the aggregation success
//     probability α below 1.
//   - Isolated: every process produces a causally isolated interval; the
//     predicate holds nowhere (except trivially at single leaves).
//
// Causality is real: pulses synchronize via procsim message events, so all
// interval bounds are genuine event timestamps of one consistent execution —
// no hand-crafted vector clocks.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"hierdet/internal/interval"
	"hierdet/internal/procsim"
	"hierdet/internal/tree"
)

// Kind is a round kind.
type Kind int

const (
	// Global synchronizes all processes.
	Global Kind = iota
	// Group synchronizes each subtree at the round's depth.
	Group
	// Isolated produces causally isolated intervals.
	Isolated
	// Subset synchronizes one random process subset that ignores the tree
	// structure. Detections then occur exactly at the nodes whose whole
	// subtree happens to fall inside the subset — usually none above the
	// leaves — making it a stress for the elimination path rather than the
	// aggregation path.
	Subset
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Global:
		return "global"
	case Group:
		return "group"
	case Isolated:
		return "isolated"
	case Subset:
		return "subset"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Round records one generated round: its kind and the process groups whose
// intervals mutually overlap (ground truth for completeness checks).
type Round struct {
	Kind   Kind
	Depth  int     // for Group rounds: the subtree depth synchronized
	Groups [][]int // sorted member lists; singletons for Isolated
}

// Execution is a recorded execution: one interval stream per process, in
// generation (= succession) order, plus the per-round ground truth.
type Execution struct {
	N       int
	Streams [][]interval.Interval
	Rounds  []Round
}

// Config parameterizes Generate.
type Config struct {
	// Topology supplies n and the subtree structure for group rounds.
	Topology *tree.Topology
	// Rounds is the number of rounds — the paper's p.
	Rounds int
	// Seed fixes the round-kind sequence.
	Seed int64
	// PGlobal, PGroup and PSubset are the probabilities of global, group
	// and random-subset rounds; the remainder is isolated. All in [0,1]
	// with sum ≤ 1.
	PGlobal, PGroup, PSubset float64
}

// Generate produces an execution for the alive processes of cfg.Topology.
func Generate(cfg Config) *Execution {
	if cfg.Topology == nil {
		panic("workload: nil topology")
	}
	if cfg.Rounds <= 0 {
		panic(fmt.Sprintf("workload: invalid round count %d", cfg.Rounds))
	}
	if cfg.PGlobal < 0 || cfg.PGroup < 0 || cfg.PSubset < 0 ||
		cfg.PGlobal+cfg.PGroup+cfg.PSubset > 1 {
		panic(fmt.Sprintf("workload: invalid mix global=%v group=%v subset=%v",
			cfg.PGlobal, cfg.PGroup, cfg.PSubset))
	}
	n := cfg.Topology.N()
	exec := &Execution{N: n, Streams: make([][]interval.Interval, n)}
	procs := make([]*procsim.Process, n)
	for i := 0; i < n; i++ {
		i := i
		procs[i] = procsim.New(i, n, func(iv interval.Interval) {
			exec.Streams[i] = append(exec.Streams[i], iv)
		})
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	height := cfg.Topology.Height()
	alive := cfg.Topology.AliveNodes()

	for round := 0; round < cfg.Rounds; round++ {
		draw := r.Float64()
		switch {
		case draw < cfg.PGlobal:
			pulse(procs, alive)
			exec.Rounds = append(exec.Rounds, Round{Kind: Global, Groups: [][]int{append([]int(nil), alive...)}})
		case draw < cfg.PGlobal+cfg.PGroup && height >= 1:
			depth := 1
			if height > 1 {
				depth = 1 + r.Intn(height)
			}
			groups := subtreesAtDepth(cfg.Topology, depth)
			for _, g := range groups {
				pulse(procs, g)
			}
			exec.Rounds = append(exec.Rounds, Round{Kind: Group, Depth: depth, Groups: groups})
		case draw < cfg.PGlobal+cfg.PGroup+cfg.PSubset && len(alive) >= 3:
			// A random subset of between 2 and n−1 processes synchronizes;
			// everyone else is isolated this round.
			k := 2 + r.Intn(len(alive)-2)
			perm := r.Perm(len(alive))
			subset := make([]int, k)
			for i := 0; i < k; i++ {
				subset[i] = alive[perm[i]]
			}
			sort.Ints(subset)
			pulse(procs, subset)
			groups := [][]int{subset}
			in := make(map[int]bool, k)
			for _, p := range subset {
				in[p] = true
			}
			for _, p := range alive {
				if !in[p] {
					procs[p].SetPredicate(true)
					procs[p].Internal()
					procs[p].SetPredicate(false)
					procs[p].Internal()
					groups = append(groups, []int{p})
				}
			}
			exec.Rounds = append(exec.Rounds, Round{Kind: Subset, Groups: groups})
		default:
			var groups [][]int
			for _, p := range alive {
				procs[p].SetPredicate(true)
				procs[p].Internal()
				procs[p].SetPredicate(false)
				procs[p].Internal()
				groups = append(groups, []int{p})
			}
			exec.Rounds = append(exec.Rounds, Round{Kind: Isolated, Groups: groups})
		}
	}
	for _, p := range procs {
		p.Finish()
	}
	return exec
}

// pulse synchronizes the members' intervals through the lowest-id member as
// coordinator: every member's interval start happens-before every member's
// interval end, so the member intervals pairwise satisfy Eq. 2.
func pulse(procs []*procsim.Process, members []int) {
	if len(members) == 0 {
		return
	}
	coord := members[0]
	for _, m := range members {
		if m < coord {
			coord = m
		}
	}
	for _, m := range members {
		procs[m].SetPredicate(true)
		procs[m].Internal()
	}
	for _, m := range members {
		if m != coord {
			procs[coord].Receive(procs[m].PrepareSend())
		}
	}
	for _, m := range members {
		if m != coord {
			procs[m].Receive(procs[coord].PrepareSend())
		}
	}
	for _, m := range members {
		procs[m].SetPredicate(false)
		procs[m].Internal()
	}
}

// subtreesAtDepth returns the member sets of all subtrees rooted at the
// given depth, plus singleton groups for shallower leaves (every process
// produces an interval every round).
func subtreesAtDepth(t *tree.Topology, depth int) [][]int {
	var groups [][]int
	covered := make(map[int]bool)
	for _, x := range t.AliveNodes() {
		if t.Depth(x) == depth {
			g := t.Subtree(x)
			sort.Ints(g)
			groups = append(groups, g)
			for _, m := range g {
				covered[m] = true
			}
		}
	}
	for _, x := range t.AliveNodes() {
		if !covered[x] && t.Depth(x) < depth {
			groups = append(groups, []int{x})
		}
	}
	return groups
}

// ExpectedDetections returns how many rounds contain a group that covers
// span — the number of times a detector whose subtree spans exactly those
// processes must report the predicate. Span order does not matter.
func (e *Execution) ExpectedDetections(span []int) int {
	span = append([]int(nil), span...)
	sort.Ints(span)
	count := 0
	for _, round := range e.Rounds {
		for _, g := range round.Groups {
			if containsAll(g, span) {
				count++
				break
			}
		}
	}
	return count
}

// TotalIntervals returns the number of intervals across all processes.
func (e *Execution) TotalIntervals() int {
	total := 0
	for _, s := range e.Streams {
		total += len(s)
	}
	return total
}

// containsAll reports span ⊆ g for sorted slices.
func containsAll(g, span []int) bool {
	i := 0
	for _, want := range span {
		for i < len(g) && g[i] < want {
			i++
		}
		if i >= len(g) || g[i] != want {
			return false
		}
		i++
	}
	return true
}
