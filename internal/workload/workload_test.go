package workload

import (
	"testing"

	"hierdet/internal/interval"
	"hierdet/internal/tree"
)

func TestGenerateShape(t *testing.T) {
	tp := tree.Balanced(2, 2) // 7 nodes
	e := Generate(Config{Topology: tp, Rounds: 10, Seed: 1, PGlobal: 0.5, PGroup: 0.3})
	if e.N != 7 || len(e.Rounds) != 10 {
		t.Fatalf("N=%d rounds=%d", e.N, len(e.Rounds))
	}
	// Every process produces exactly one interval per round.
	for p, s := range e.Streams {
		if len(s) != 10 {
			t.Fatalf("process %d: %d intervals, want 10", p, len(s))
		}
		for k, iv := range s {
			if iv.Origin != p || iv.Seq != k {
				t.Fatalf("stream identity broken: %+v", iv)
			}
			if !iv.WellFormed() {
				t.Fatalf("ill-formed interval %v", iv)
			}
		}
	}
	if e.TotalIntervals() != 70 {
		t.Fatalf("TotalIntervals = %d", e.TotalIntervals())
	}
}

func TestSuccessionPerProcess(t *testing.T) {
	tp := tree.Balanced(3, 2)
	e := Generate(Config{Topology: tp, Rounds: 20, Seed: 2, PGlobal: 0.4, PGroup: 0.4})
	for p, s := range e.Streams {
		for k := 1; k < len(s); k++ {
			if !s[k-1].Hi.Less(s[k].Lo) {
				t.Fatalf("process %d: succ violated between rounds %d and %d", p, k-1, k)
			}
		}
	}
}

func TestGlobalPulseOverlaps(t *testing.T) {
	tp := tree.Balanced(2, 2)
	e := Generate(Config{Topology: tp, Rounds: 5, Seed: 3, PGlobal: 1})
	for r := range e.Rounds {
		if e.Rounds[r].Kind != Global {
			t.Fatalf("round %d kind = %v", r, e.Rounds[r].Kind)
		}
		var set []interval.Interval
		for p := 0; p < e.N; p++ {
			set = append(set, e.Streams[p][r])
		}
		if !interval.OverlapAll(set) {
			t.Fatalf("global round %d: intervals do not all overlap", r)
		}
	}
}

func TestIsolatedRoundsNeverOverlap(t *testing.T) {
	tp := tree.Balanced(2, 1)                               // 3 nodes
	e := Generate(Config{Topology: tp, Rounds: 4, Seed: 4}) // all isolated
	for r := range e.Rounds {
		if e.Rounds[r].Kind != Isolated {
			t.Fatalf("round %d kind = %v", r, e.Rounds[r].Kind)
		}
		for i := 0; i < e.N; i++ {
			for j := 0; j < e.N; j++ {
				if i != j && interval.Overlap(e.Streams[i][r], e.Streams[j][r]) {
					t.Fatalf("round %d: isolated intervals of %d and %d overlap", r, i, j)
				}
			}
		}
	}
}

func TestGroupPulseOverlapsWithinGroupOnly(t *testing.T) {
	tp := tree.Balanced(2, 2)
	e := Generate(Config{Topology: tp, Rounds: 30, Seed: 5, PGroup: 1})
	sawDepth := map[int]bool{}
	for r, round := range e.Rounds {
		if round.Kind != Group {
			t.Fatalf("round %d kind = %v", r, round.Kind)
		}
		sawDepth[round.Depth] = true
		member := make(map[int]int) // process → group index
		for gi, g := range round.Groups {
			for _, p := range g {
				member[p] = gi
			}
			// Within a group, all overlap.
			var set []interval.Interval
			for _, p := range g {
				set = append(set, e.Streams[p][r])
			}
			if !interval.OverlapAll(set) {
				t.Fatalf("round %d group %v: no overlap", r, g)
			}
		}
		if len(member) != e.N {
			t.Fatalf("round %d: groups cover %d of %d processes", r, len(member), e.N)
		}
		// Across groups, Definitely must not hold for any pair.
		for i := 0; i < e.N; i++ {
			for j := i + 1; j < e.N; j++ {
				if member[i] != member[j] && interval.Overlap(e.Streams[i][r], e.Streams[j][r]) {
					t.Fatalf("round %d: cross-group overlap between %d and %d", r, i, j)
				}
			}
		}
	}
	if !sawDepth[1] || !sawDepth[2] {
		t.Fatalf("depths exercised: %v, want both 1 and 2", sawDepth)
	}
}

func TestExpectedDetections(t *testing.T) {
	tp := tree.Balanced(2, 2)
	e := Generate(Config{Topology: tp, Rounds: 40, Seed: 6, PGlobal: 0.3, PGroup: 0.4})
	globals := 0
	for _, r := range e.Rounds {
		if r.Kind == Global {
			globals++
		}
	}
	full := tp.Subtree(0)
	sortInts(full)
	if got := e.ExpectedDetections(full); got != globals {
		t.Fatalf("ExpectedDetections(all) = %d, want %d globals", got, globals)
	}
	// A leaf's span is covered every round.
	if got := e.ExpectedDetections([]int{3}); got != 40 {
		t.Fatalf("ExpectedDetections(leaf) = %d, want 40", got)
	}
	// Subtree at node 1 (span {1,3,4}) is covered by globals and by group
	// rounds at depth 1.
	want := 0
	for _, r := range e.Rounds {
		if r.Kind == Global || (r.Kind == Group && r.Depth == 1) {
			want++
		}
	}
	if got := e.ExpectedDetections([]int{1, 3, 4}); got != want {
		t.Fatalf("ExpectedDetections(subtree 1) = %d, want %d", got, want)
	}
}

func TestDeterminism(t *testing.T) {
	tp1 := tree.Balanced(2, 2)
	tp2 := tree.Balanced(2, 2)
	a := Generate(Config{Topology: tp1, Rounds: 15, Seed: 7, PGlobal: 0.5, PGroup: 0.25})
	b := Generate(Config{Topology: tp2, Rounds: 15, Seed: 7, PGlobal: 0.5, PGroup: 0.25})
	for p := range a.Streams {
		for k := range a.Streams[p] {
			x, y := a.Streams[p][k], b.Streams[p][k]
			if !x.Lo.Equal(y.Lo) || !x.Hi.Equal(y.Hi) {
				t.Fatal("equal seeds produced different executions")
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	tp := tree.Balanced(2, 1)
	for name, f := range map[string]func(){
		"nil-topology": func() { Generate(Config{Rounds: 1}) },
		"no-rounds":    func() { Generate(Config{Topology: tp}) },
		"bad-mix":      func() { Generate(Config{Topology: tp, Rounds: 1, PGlobal: 0.8, PGroup: 0.5}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestKindString(t *testing.T) {
	if Global.String() != "global" || Group.String() != "group" || Isolated.String() != "isolated" {
		t.Error("Kind.String broken")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown Kind.String broken")
	}
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
