package hierdet

import (
	"hierdet/internal/lattice"
)

// Lattice detection (Cooper–Marzullo, the paper's references [5][6]):
// exhaustive global-state enumeration over a recorded execution. It handles
// *arbitrary* predicates — including the relational ones of §I that the
// interval-based detectors cannot — at exponential worst-case cost, so it is
// meant for small recorded executions, debugging, and as an independent
// ground truth for the interval-based detectors.

// Recording is a complete execution record (every event of every process)
// for lattice detection. Build it with NewRecorder.
type Recording = lattice.Recording

// LocalState is one process's state at a global cut.
type LocalState = lattice.LocalState

// GlobalPredicate evaluates an arbitrary predicate over per-process states.
type GlobalPredicate = lattice.Predicate

// Recorder captures executions from instrumented processes.
type Recorder = lattice.Recorder

// NewRecorder returns a recorder for an n-process system; Attach it to each
// Process before the execution starts.
func NewRecorder(n int) *Recorder { return lattice.NewRecorder(n) }

// ConjunctivePredicate is Φ = ∧ᵢ φᵢ over the recorded local predicates.
func ConjunctivePredicate() GlobalPredicate { return lattice.Conjunctive() }

// LatticePossibly reports whether some consistent global state of the
// recorded execution satisfies pred.
func LatticePossibly(r *Recording, pred GlobalPredicate) (bool, error) {
	return lattice.Possibly(r, pred)
}

// LatticeDefinitely reports whether every consistent observation of the
// recorded execution passes through a global state satisfying pred.
func LatticeDefinitely(r *Recording, pred GlobalPredicate) (bool, error) {
	return lattice.Definitely(r, pred)
}
