package hierdet

import (
	"time"

	"hierdet/internal/livenet"
)

// LiveCluster runs the hierarchical detector over real goroutines and
// channels — one goroutine per process, per-message delivery goroutines as
// asynchronous (non-FIFO) links. It is the concurrency-native counterpart of
// Simulate: nondeterministic scheduling, identical detection semantics.
// Failure injection is only available in the deterministic simulator.
type LiveCluster = livenet.Cluster

// LiveDetection is one detection observed by a LiveCluster.
type LiveDetection = livenet.Detection

// LiveConfig parameterizes NewLiveCluster.
type LiveConfig struct {
	// Topology is the spanning tree (required).
	Topology *Topology
	// MaxDelay bounds each report's random delivery delay (default 200µs).
	MaxDelay time.Duration
	// Seed drives the delay distribution.
	Seed int64
	// Verify enables order checking and solution-set retention.
	Verify bool
}

// NewLiveCluster builds and starts a live cluster. Feed completed local
// intervals with Observe (safe from one goroutine per process) and call Stop
// to drain and collect the detections.
func NewLiveCluster(cfg LiveConfig) *LiveCluster {
	return livenet.New(livenet.Config{
		Topology:    cfg.Topology,
		MaxDelay:    cfg.MaxDelay,
		Seed:        cfg.Seed,
		Strict:      cfg.Verify,
		KeepMembers: cfg.Verify,
	})
}
