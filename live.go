package hierdet

import (
	"strings"
	"time"

	"hierdet/internal/livenet"
)

// LiveCluster runs the hierarchical detector over real concurrency: every
// process owns a bounded mailbox shard, a small worker pool drains the
// shards, and one timer wheel carries all delayed deliveries and heartbeats
// — steady-state goroutine count stays O(workers), independent of both the
// process count and the in-flight message count. It is the
// concurrency-native counterpart of Simulate: nondeterministic scheduling,
// identical detection semantics.
//
// With Failure.HbEvery set, the cluster also runs the paper's §III-F failure
// handling live: Kill crash-stops a node, survivors detect the silence via
// heartbeats, orphaned subtrees renegotiate parents with the attach
// protocol, and detection continues over the survivors. Kill, Metrics,
// Drain, Failed and Repairs are available on the returned cluster, and the
// observability plane — ClusterMetrics, MetricsByNode, Registry and the
// Events stream — watches all of it.
type LiveCluster = livenet.Cluster

// LiveDetection is one detection observed by a LiveCluster.
type LiveDetection = livenet.Detection

// LiveMetrics is a per-node snapshot of a live cluster's runtime counters:
// messages in/out, resequencer buffer depth and high-water mark, duplicates
// and stale reports dropped, detector queue/pruning counts, detections,
// repairs, dead children dropped, and mailbox depth.
type LiveMetrics = livenet.Metrics

// LiveRepair records one completed tree repair in a live cluster: the
// orphaned subtree root and the parent that adopted it (NoParent if the
// orphan exhausted its candidates and became a partition root).
type LiveRepair = livenet.RepairEvent

// LiveDeliveryOptions tunes the cluster's delivery plane: the simulated
// network delay, the worker pool and mailbox shards, and report batching.
type LiveDeliveryOptions struct {
	// MaxDelay bounds each report's random delivery delay (default 200µs).
	MaxDelay time.Duration
	// Workers sizes the pool draining the per-process mailboxes (default
	// GOMAXPROCS); MailboxBound caps each mailbox for Observe/ObserveBatch
	// callers, which block at the bound (default 4096).
	Workers      int
	MailboxBound int
	// BatchWindow coalesces each node's child→parent reports into one
	// message (one wire frame in distributed mode) per window, trading up to
	// one window of detection latency for per-message overhead. Zero sends
	// every report immediately.
	BatchWindow time.Duration
	// AdaptiveFlush coalesces reports per worker drain instead of per fixed
	// window: whatever a node emits while handling one mailbox batch leaves
	// as one message at the end of that drain, so coalescing follows the
	// actual burst size with zero added latency. Mutually exclusive with
	// BatchWindow.
	AdaptiveFlush bool
	// SequentialDetect restores the single-threaded in-node detection
	// engine (the paper's Algorithm 1 loop exactly as it ran before the
	// parallel engine) — the property-test oracle and benchmark baseline.
	// Leave it off to get the partitioned engine: comparison rounds fan out
	// across a shared worker set and aggregates are published from a flat
	// vector-clock store, with byte-identical detections.
	SequentialDetect bool
	// DetectWorkers sizes the comparison worker set the parallel detection
	// engine shares across all nodes (default GOMAXPROCS). Ignored under
	// SequentialDetect.
	DetectWorkers int
}

// LiveFailureOptions enables and tunes the paper's §III-F failure handling.
type LiveFailureOptions struct {
	// HbEvery enables failure handling: every node publishes a heartbeat
	// and watches its tree neighbours on this period. Zero disables
	// failure handling entirely (and Kill panics).
	HbEvery time.Duration
	// HbTimeout is the silence after which a neighbour is suspected
	// (default 8×HbEvery).
	HbTimeout time.Duration
	// SeekTimeout bounds one attach-request round trip during repair
	// (defaults generously; the happy path never waits on it).
	SeekTimeout time.Duration
	// ResendLastOnAdopt re-reports the orphan's last pre-crash aggregate to
	// its adoptive parent (the paper's Figure 2(c) behaviour). Detections
	// lost in flight through the dead node may be recovered at the cost of
	// possible re-detections.
	ResendLastOnAdopt bool
}

// LiveDistributedOptions runs the cluster as one participant of a
// multi-process deployment.
type LiveDistributedOptions struct {
	// Transport switches the cluster into distributed mode: it hosts only
	// LocalNodes, and traffic to every other tree node is wire-encoded and
	// shipped through the transport (NewTCPTransport for real sockets). The
	// cluster starts the transport and closes it in Stop.
	Transport Transport
	// LocalNodes is the subset of tree nodes this participant hosts
	// (distributed mode only). Typically one node per OS process.
	LocalNodes []int
	// StartupGrace suppresses failure suspicion for this long after start,
	// covering the staggered launch of a multi-process deployment (default
	// 2×HbTimeout in distributed mode).
	StartupGrace time.Duration
}

// LiveConfig parameterizes NewLiveCluster. Tuning lives in the three option
// groups — Delivery, Failure and Distributed. The flat fields mirroring them
// are deprecated aliases kept only so old code still compiles: setting any of
// them is rejected (Validate returns a *FlatConfigError naming the
// stragglers, and NewLiveCluster panics with it) rather than silently folded,
// so a migrated deployment cannot carry tuning that no longer does anything.
type LiveConfig struct {
	// Topology is the spanning tree (required).
	Topology *Topology
	// Seed drives the delay distribution.
	Seed int64
	// Verify enables order checking and solution-set retention.
	Verify bool

	// Delivery tunes the delivery plane (delay, worker pool, batching).
	Delivery LiveDeliveryOptions
	// Failure enables and tunes §III-F failure handling.
	Failure LiveFailureOptions
	// Distributed runs this cluster as one participant of a multi-process
	// deployment.
	Distributed LiveDistributedOptions

	// Events, if set, receives the cluster's full lifecycle stream — every
	// interval observed, report sent and received, solution found, interval
	// pruned, node suspected, repair concluded and transport redial — as one
	// ordered sink (per-node causal order; see EventKind). It subsumes
	// OnDetect and OnRepair: a SolutionFound event carries everything a
	// LiveDetection does, a RepairConcluded everything an OnRepair call does.
	// The sink runs on cluster goroutines: it must be quick, safe for
	// concurrent calls, and must not call Stop.
	Events func(Event)

	// OnRepair is called after each orphan finishes repair — adopted by
	// newParent, or NoParent if it declared itself a partition root. Called
	// outside cluster locks.
	//
	// Deprecated: consume RepairConcluded events from Events instead.
	OnRepair func(orphan, newParent int)
	// OnDetect streams each detection as it is recorded — the live
	// complement of Stop's batch return. It runs on node goroutines, so it
	// must be quick and must not call Stop.
	//
	// Deprecated: consume SolutionFound events from Events instead.
	OnDetect func(LiveDetection)

	// Deprecated: use Delivery.MaxDelay. Setting this is rejected.
	MaxDelay time.Duration
	// Deprecated: use Delivery.Workers. Setting this is rejected.
	Workers int
	// Deprecated: use Delivery.MailboxBound. Setting this is rejected.
	MailboxBound int
	// Deprecated: use Delivery.BatchWindow. Setting this is rejected.
	BatchWindow time.Duration
	// Deprecated: use Failure.HbEvery. Setting this is rejected.
	HbEvery time.Duration
	// Deprecated: use Failure.HbTimeout. Setting this is rejected.
	HbTimeout time.Duration
	// Deprecated: use Failure.SeekTimeout. Setting this is rejected.
	SeekTimeout time.Duration
	// Deprecated: use Failure.ResendLastOnAdopt. Setting this is rejected.
	ResendLastOnAdopt bool
	// Deprecated: use Distributed.Transport. Setting this is rejected.
	Transport Transport
	// Deprecated: use Distributed.LocalNodes. Setting this is rejected.
	LocalNodes []int
	// Deprecated: use Distributed.StartupGrace. Setting this is rejected.
	StartupGrace time.Duration
}

// FlatConfigError reports deprecated flat LiveConfig alias fields that were
// set. The grouped options (Delivery, Failure, Distributed) are the only
// configuration path; a flat value would be silently ignored, and a cluster
// running without the tuning its config spells out is worse than a loud
// constructor failure.
type FlatConfigError struct {
	// Fields names the offending LiveConfig fields, in declaration order.
	Fields []string
}

func (e *FlatConfigError) Error() string {
	return "hierdet: deprecated flat LiveConfig field(s) set: " +
		strings.Join(e.Fields, ", ") +
		" — move the value(s) into the Delivery/Failure/Distributed groups"
}

// Validate checks a LiveConfig for the deprecated flat alias fields,
// returning a *FlatConfigError naming every one that is set, or nil for a
// clean grouped configuration. NewLiveCluster panics with exactly this
// error, so callers migrating old configs can check ahead of construction.
func (cfg LiveConfig) Validate() error {
	var bad []string
	flag := func(set bool, name string) {
		if set {
			bad = append(bad, name)
		}
	}
	flag(cfg.MaxDelay != 0, "MaxDelay")
	flag(cfg.Workers != 0, "Workers")
	flag(cfg.MailboxBound != 0, "MailboxBound")
	flag(cfg.BatchWindow != 0, "BatchWindow")
	flag(cfg.HbEvery != 0, "HbEvery")
	flag(cfg.HbTimeout != 0, "HbTimeout")
	flag(cfg.SeekTimeout != 0, "SeekTimeout")
	flag(cfg.ResendLastOnAdopt, "ResendLastOnAdopt")
	flag(cfg.Transport != nil, "Transport")
	flag(cfg.LocalNodes != nil, "LocalNodes")
	flag(cfg.StartupGrace != 0, "StartupGrace")
	if bad != nil {
		return &FlatConfigError{Fields: bad}
	}
	return nil
}

// NewLiveCluster builds and starts a live cluster. Feed completed local
// intervals with Observe (safe from one goroutine per process) and call Stop
// to drain and collect the detections. It panics with a *FlatConfigError if
// any deprecated flat alias field is set (see Validate).
func NewLiveCluster(cfg LiveConfig) *LiveCluster {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return livenet.New(livenet.Config{
		Topology:          cfg.Topology,
		MaxDelay:          cfg.Delivery.MaxDelay,
		Seed:              cfg.Seed,
		Strict:            cfg.Verify,
		KeepMembers:       cfg.Verify,
		Workers:           cfg.Delivery.Workers,
		MailboxBound:      cfg.Delivery.MailboxBound,
		BatchWindow:       cfg.Delivery.BatchWindow,
		AdaptiveFlush:     cfg.Delivery.AdaptiveFlush,
		SequentialDetect:  cfg.Delivery.SequentialDetect,
		DetectWorkers:     cfg.Delivery.DetectWorkers,
		HbEvery:           cfg.Failure.HbEvery,
		HbTimeout:         cfg.Failure.HbTimeout,
		SeekTimeout:       cfg.Failure.SeekTimeout,
		ResendLastOnAdopt: cfg.Failure.ResendLastOnAdopt,
		Events:            cfg.Events,
		OnRepair:          cfg.OnRepair,
		OnDetect:          cfg.OnDetect,
		Transport:         cfg.Distributed.Transport,
		LocalNodes:        cfg.Distributed.LocalNodes,
		StartupGrace:      cfg.Distributed.StartupGrace,
	})
}
