package hierdet

import (
	"time"

	"hierdet/internal/livenet"
)

// LiveCluster runs the hierarchical detector over real concurrency: every
// process owns a bounded mailbox shard, a small worker pool drains the
// shards, and one timer wheel carries all delayed deliveries and heartbeats
// — steady-state goroutine count stays O(workers), independent of both the
// process count and the in-flight message count. It is the
// concurrency-native counterpart of Simulate: nondeterministic scheduling,
// identical detection semantics.
//
// With Failure.HbEvery set, the cluster also runs the paper's §III-F failure
// handling live: Kill crash-stops a node, survivors detect the silence via
// heartbeats, orphaned subtrees renegotiate parents with the attach
// protocol, and detection continues over the survivors. Kill, Metrics,
// Drain, Failed and Repairs are available on the returned cluster, and the
// observability plane — ClusterMetrics, MetricsByNode, Registry and the
// Events stream — watches all of it.
type LiveCluster = livenet.Cluster

// LiveDetection is one detection observed by a LiveCluster.
type LiveDetection = livenet.Detection

// LiveMetrics is a per-node snapshot of a live cluster's runtime counters:
// messages in/out, resequencer buffer depth and high-water mark, duplicates
// and stale reports dropped, detector queue/pruning counts, detections,
// repairs, dead children dropped, and mailbox depth.
type LiveMetrics = livenet.Metrics

// LiveRepair records one completed tree repair in a live cluster: the
// orphaned subtree root and the parent that adopted it (NoParent if the
// orphan exhausted its candidates and became a partition root).
type LiveRepair = livenet.RepairEvent

// LiveDeliveryOptions tunes the cluster's delivery plane: the simulated
// network delay, the worker pool and mailbox shards, and report batching.
type LiveDeliveryOptions struct {
	// MaxDelay bounds each report's random delivery delay (default 200µs).
	MaxDelay time.Duration
	// Workers sizes the pool draining the per-process mailboxes (default
	// GOMAXPROCS); MailboxBound caps each mailbox for Observe/ObserveBatch
	// callers, which block at the bound (default 4096).
	Workers      int
	MailboxBound int
	// BatchWindow coalesces each node's child→parent reports into one
	// message (one wire frame in distributed mode) per window, trading up to
	// one window of detection latency for per-message overhead. Zero sends
	// every report immediately.
	BatchWindow time.Duration
	// SequentialDetect restores the single-threaded in-node detection
	// engine (the paper's Algorithm 1 loop exactly as it ran before the
	// parallel engine) — the property-test oracle and benchmark baseline.
	// Leave it off to get the partitioned engine: comparison rounds fan out
	// across a shared worker set and aggregates are published from a flat
	// vector-clock store, with byte-identical detections.
	SequentialDetect bool
	// DetectWorkers sizes the comparison worker set the parallel detection
	// engine shares across all nodes (default GOMAXPROCS). Ignored under
	// SequentialDetect.
	DetectWorkers int
}

// LiveFailureOptions enables and tunes the paper's §III-F failure handling.
type LiveFailureOptions struct {
	// HbEvery enables failure handling: every node publishes a heartbeat
	// and watches its tree neighbours on this period. Zero disables
	// failure handling entirely (and Kill panics).
	HbEvery time.Duration
	// HbTimeout is the silence after which a neighbour is suspected
	// (default 8×HbEvery).
	HbTimeout time.Duration
	// SeekTimeout bounds one attach-request round trip during repair
	// (defaults generously; the happy path never waits on it).
	SeekTimeout time.Duration
	// ResendLastOnAdopt re-reports the orphan's last pre-crash aggregate to
	// its adoptive parent (the paper's Figure 2(c) behaviour). Detections
	// lost in flight through the dead node may be recovered at the cost of
	// possible re-detections.
	ResendLastOnAdopt bool
}

// LiveDistributedOptions runs the cluster as one participant of a
// multi-process deployment.
type LiveDistributedOptions struct {
	// Transport switches the cluster into distributed mode: it hosts only
	// LocalNodes, and traffic to every other tree node is wire-encoded and
	// shipped through the transport (NewTCPTransport for real sockets). The
	// cluster starts the transport and closes it in Stop.
	Transport Transport
	// LocalNodes is the subset of tree nodes this participant hosts
	// (distributed mode only). Typically one node per OS process.
	LocalNodes []int
	// StartupGrace suppresses failure suspicion for this long after start,
	// covering the staggered launch of a multi-process deployment (default
	// 2×HbTimeout in distributed mode).
	StartupGrace time.Duration
}

// LiveConfig parameterizes NewLiveCluster. Tuning lives in the three option
// groups — Delivery, Failure and Distributed; the flat fields mirroring them
// are deprecated aliases kept for source compatibility, consulted only where
// the grouped field is unset.
type LiveConfig struct {
	// Topology is the spanning tree (required).
	Topology *Topology
	// Seed drives the delay distribution.
	Seed int64
	// Verify enables order checking and solution-set retention.
	Verify bool

	// Delivery tunes the delivery plane (delay, worker pool, batching).
	Delivery LiveDeliveryOptions
	// Failure enables and tunes §III-F failure handling.
	Failure LiveFailureOptions
	// Distributed runs this cluster as one participant of a multi-process
	// deployment.
	Distributed LiveDistributedOptions

	// Events, if set, receives the cluster's full lifecycle stream — every
	// interval observed, report sent and received, solution found, interval
	// pruned, node suspected, repair concluded and transport redial — as one
	// ordered sink (per-node causal order; see EventKind). It subsumes
	// OnDetect and OnRepair: a SolutionFound event carries everything a
	// LiveDetection does, a RepairConcluded everything an OnRepair call does.
	// The sink runs on cluster goroutines: it must be quick, safe for
	// concurrent calls, and must not call Stop.
	Events func(Event)

	// OnRepair is called after each orphan finishes repair — adopted by
	// newParent, or NoParent if it declared itself a partition root. Called
	// outside cluster locks.
	//
	// Deprecated: consume RepairConcluded events from Events instead.
	OnRepair func(orphan, newParent int)
	// OnDetect streams each detection as it is recorded — the live
	// complement of Stop's batch return. It runs on node goroutines, so it
	// must be quick and must not call Stop.
	//
	// Deprecated: consume SolutionFound events from Events instead.
	OnDetect func(LiveDetection)

	// Deprecated: use Delivery.MaxDelay.
	MaxDelay time.Duration
	// Deprecated: use Delivery.Workers.
	Workers int
	// Deprecated: use Delivery.MailboxBound.
	MailboxBound int
	// Deprecated: use Delivery.BatchWindow.
	BatchWindow time.Duration
	// Deprecated: use Failure.HbEvery.
	HbEvery time.Duration
	// Deprecated: use Failure.HbTimeout.
	HbTimeout time.Duration
	// Deprecated: use Failure.SeekTimeout.
	SeekTimeout time.Duration
	// Deprecated: use Failure.ResendLastOnAdopt.
	ResendLastOnAdopt bool
	// Deprecated: use Distributed.Transport.
	Transport Transport
	// Deprecated: use Distributed.LocalNodes.
	LocalNodes []int
	// Deprecated: use Distributed.StartupGrace.
	StartupGrace time.Duration
}

// resolve folds the deprecated flat aliases into the grouped options: each
// grouped field wins where set, the alias fills it where not. Booleans OR
// (there is no "explicitly false" to distinguish from unset).
func (cfg LiveConfig) resolve() LiveConfig {
	d, f, x := &cfg.Delivery, &cfg.Failure, &cfg.Distributed
	if d.MaxDelay == 0 {
		d.MaxDelay = cfg.MaxDelay
	}
	if d.Workers == 0 {
		d.Workers = cfg.Workers
	}
	if d.MailboxBound == 0 {
		d.MailboxBound = cfg.MailboxBound
	}
	if d.BatchWindow == 0 {
		d.BatchWindow = cfg.BatchWindow
	}
	if f.HbEvery == 0 {
		f.HbEvery = cfg.HbEvery
	}
	if f.HbTimeout == 0 {
		f.HbTimeout = cfg.HbTimeout
	}
	if f.SeekTimeout == 0 {
		f.SeekTimeout = cfg.SeekTimeout
	}
	f.ResendLastOnAdopt = f.ResendLastOnAdopt || cfg.ResendLastOnAdopt
	if x.Transport == nil {
		x.Transport = cfg.Transport
	}
	if x.LocalNodes == nil {
		x.LocalNodes = cfg.LocalNodes
	}
	if x.StartupGrace == 0 {
		x.StartupGrace = cfg.StartupGrace
	}
	return cfg
}

// NewLiveCluster builds and starts a live cluster. Feed completed local
// intervals with Observe (safe from one goroutine per process) and call Stop
// to drain and collect the detections.
func NewLiveCluster(cfg LiveConfig) *LiveCluster {
	cfg = cfg.resolve()
	return livenet.New(livenet.Config{
		Topology:          cfg.Topology,
		MaxDelay:          cfg.Delivery.MaxDelay,
		Seed:              cfg.Seed,
		Strict:            cfg.Verify,
		KeepMembers:       cfg.Verify,
		Workers:           cfg.Delivery.Workers,
		MailboxBound:      cfg.Delivery.MailboxBound,
		BatchWindow:       cfg.Delivery.BatchWindow,
		SequentialDetect:  cfg.Delivery.SequentialDetect,
		DetectWorkers:     cfg.Delivery.DetectWorkers,
		HbEvery:           cfg.Failure.HbEvery,
		HbTimeout:         cfg.Failure.HbTimeout,
		SeekTimeout:       cfg.Failure.SeekTimeout,
		ResendLastOnAdopt: cfg.Failure.ResendLastOnAdopt,
		Events:            cfg.Events,
		OnRepair:          cfg.OnRepair,
		OnDetect:          cfg.OnDetect,
		Transport:         cfg.Distributed.Transport,
		LocalNodes:        cfg.Distributed.LocalNodes,
		StartupGrace:      cfg.Distributed.StartupGrace,
	})
}
