package hierdet

import (
	"time"

	"hierdet/internal/livenet"
)

// LiveCluster runs the hierarchical detector over real concurrency: every
// process owns a bounded mailbox shard, a small worker pool drains the
// shards, and one timer wheel carries all delayed deliveries and heartbeats
// — steady-state goroutine count stays O(workers), independent of both the
// process count and the in-flight message count. It is the
// concurrency-native counterpart of Simulate: nondeterministic scheduling,
// identical detection semantics.
//
// With HbEvery set, the cluster also runs the paper's §III-F failure
// handling live: Kill crash-stops a node, survivors detect the silence via
// heartbeats, orphaned subtrees renegotiate parents with the attach
// protocol, and detection continues over the survivors. Kill, Metrics,
// Drain, Failed and Repairs are available on the returned cluster.
type LiveCluster = livenet.Cluster

// LiveDetection is one detection observed by a LiveCluster.
type LiveDetection = livenet.Detection

// LiveMetrics is a per-node snapshot of a live cluster's runtime counters:
// messages in/out, resequencer buffer depth and high-water mark, duplicates
// and stale reports dropped, detections, repairs and dead children dropped.
type LiveMetrics = livenet.Metrics

// LiveRepair records one completed tree repair in a live cluster: the
// orphaned subtree root and the parent that adopted it (NoParent if the
// orphan exhausted its candidates and became a partition root).
type LiveRepair = livenet.RepairEvent

// LiveConfig parameterizes NewLiveCluster.
type LiveConfig struct {
	// Topology is the spanning tree (required).
	Topology *Topology
	// MaxDelay bounds each report's random delivery delay (default 200µs).
	MaxDelay time.Duration
	// Seed drives the delay distribution.
	Seed int64
	// Verify enables order checking and solution-set retention.
	Verify bool

	// Workers sizes the pool draining the per-process mailboxes (default
	// GOMAXPROCS); MailboxBound caps each mailbox for Observe/ObserveBatch
	// callers, which block at the bound (default 4096).
	Workers      int
	MailboxBound int
	// BatchWindow coalesces each node's child→parent reports into one
	// message (one wire frame in distributed mode) per window, trading up to
	// one window of detection latency for per-message overhead. Zero sends
	// every report immediately.
	BatchWindow time.Duration

	// HbEvery enables failure handling: every node publishes a heartbeat
	// and watches its tree neighbours on this period. Zero disables
	// failure handling entirely (and Kill panics).
	HbEvery time.Duration
	// HbTimeout is the silence after which a neighbour is suspected
	// (default 8×HbEvery).
	HbTimeout time.Duration
	// SeekTimeout bounds one attach-request round trip during repair
	// (defaults generously; the happy path never waits on it).
	SeekTimeout time.Duration
	// ResendLastOnAdopt re-reports the orphan's last pre-crash aggregate to
	// its adoptive parent (the paper's Figure 2(c) behaviour). Detections
	// lost in flight through the dead node may be recovered at the cost of
	// possible re-detections.
	ResendLastOnAdopt bool
	// OnRepair, if set, is called after each orphan finishes repair —
	// adopted by newParent, or NoParent if it declared itself a partition
	// root. Called outside cluster locks.
	OnRepair func(orphan, newParent int)
	// OnDetect, if set, streams each detection as it is recorded — the
	// live complement of Stop's batch return. It runs on node goroutines,
	// so it must be quick and must not call Stop.
	OnDetect func(LiveDetection)

	// Transport switches the cluster into distributed mode: it hosts only
	// LocalNodes, and traffic to every other tree node is wire-encoded and
	// shipped through the transport (NewTCPTransport for real sockets). The
	// cluster starts the transport and closes it in Stop.
	Transport Transport
	// LocalNodes is the subset of tree nodes this participant hosts
	// (distributed mode only). Typically one node per OS process.
	LocalNodes []int
	// StartupGrace suppresses failure suspicion for this long after start,
	// covering the staggered launch of a multi-process deployment (default
	// 2×HbTimeout in distributed mode).
	StartupGrace time.Duration
}

// NewLiveCluster builds and starts a live cluster. Feed completed local
// intervals with Observe (safe from one goroutine per process) and call Stop
// to drain and collect the detections.
func NewLiveCluster(cfg LiveConfig) *LiveCluster {
	return livenet.New(livenet.Config{
		Topology:          cfg.Topology,
		MaxDelay:          cfg.MaxDelay,
		Seed:              cfg.Seed,
		Strict:            cfg.Verify,
		KeepMembers:       cfg.Verify,
		Workers:           cfg.Workers,
		MailboxBound:      cfg.MailboxBound,
		BatchWindow:       cfg.BatchWindow,
		HbEvery:           cfg.HbEvery,
		HbTimeout:         cfg.HbTimeout,
		SeekTimeout:       cfg.SeekTimeout,
		ResendLastOnAdopt: cfg.ResendLastOnAdopt,
		OnRepair:          cfg.OnRepair,
		OnDetect:          cfg.OnDetect,
		Transport:         cfg.Transport,
		LocalNodes:        cfg.LocalNodes,
		StartupGrace:      cfg.StartupGrace,
	})
}
