package hierdet

import (
	"hierdet/internal/livenet"
	"hierdet/internal/obsv"
)

// observe.go — the public face of the observability layer. A live cluster
// exposes three complementary views:
//
//   - Events (LiveConfig.Events): the typed lifecycle stream, one ordered
//     sink for everything the detector does.
//   - Cluster.ClusterMetrics / Cluster.MetricsByNode: aggregate and per-node
//     snapshots with stable JSON encodings.
//   - Cluster.Registry: the metric families behind both, ready for
//     Prometheus text exposition (MetricsRegistry.Handler serves /metrics).

// Event is one entry of a live cluster's lifecycle stream; see EventKind for
// what each kind carries.
type Event = obsv.Event

// EventKind discriminates lifecycle events.
type EventKind = obsv.EventKind

// Lifecycle event kinds (see the obsv package for field-by-field semantics).
const (
	// EventIntervalObserved: completed local intervals entered the detector.
	EventIntervalObserved = obsv.IntervalObserved
	// EventReportSent: a node shipped a report message to its parent.
	EventReportSent = obsv.ReportSent
	// EventReportRecv: a node accepted a report message from a child.
	EventReportRecv = obsv.ReportRecv
	// EventSolutionFound: a node detected a satisfaction of the predicate.
	EventSolutionFound = obsv.SolutionFound
	// EventIntervalPruned: detection deleted queue heads (Eq. 10).
	EventIntervalPruned = obsv.IntervalPruned
	// EventNodeSuspected: a failure detector concluded a neighbour is dead.
	EventNodeSuspected = obsv.NodeSuspected
	// EventRepairConcluded: an orphan root finished reattachment (§III-F).
	EventRepairConcluded = obsv.RepairConcluded
	// EventTransportRedial: the transport re-established a peer connection.
	EventTransportRedial = obsv.TransportRedial
	// EventTenantRegistered: a tenant plane instantiated a predicate tree.
	EventTenantRegistered = obsv.TenantRegistered
	// EventTenantEvicted: a tenant's tree was stopped and unregistered.
	EventTenantEvicted = obsv.TenantEvicted
	// EventLeaseAcquired: a fleet monitor took ownership of a tenant bucket.
	EventLeaseAcquired = obsv.LeaseAcquired
	// EventLeaseLost: a fleet monitor lost (or shed) a tenant bucket.
	EventLeaseLost = obsv.LeaseLost
)

// NoPeer marks an absent Event counterparty (it equals NoParent).
const NoPeer = obsv.NoPeer

// MetricsRegistry holds a cluster's metric families
// (LiveCluster.Registry); its Handler method serves Prometheus text
// exposition, WritePrometheus writes it to any io.Writer.
type MetricsRegistry = obsv.Registry

// ClusterMetrics is an aggregate snapshot across every plane of a live
// cluster — detector sums, scheduler occupancy, timer-wheel state, the
// lifecycle ledger and per-kind event counts — with a stable JSON encoding
// (LiveCluster.ClusterMetrics).
type ClusterMetrics = livenet.ClusterMetrics

// NodeMetrics pairs a node id with its LiveMetrics snapshot — the
// iteration-stable per-node form (LiveCluster.MetricsByNode).
type NodeMetrics = livenet.NodeMetrics
