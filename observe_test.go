package hierdet

import (
	"errors"
	"slices"
	"strings"
	"testing"
	"time"
)

// TestLiveConfigRejectsFlatAliases pins satellite behaviour of the grouped
// LiveConfig: the deprecated flat alias fields are no longer folded into the
// groups — Validate names every straggler in a typed *FlatConfigError, and a
// clean grouped configuration passes.
func TestLiveConfigRejectsFlatAliases(t *testing.T) {
	err := LiveConfig{
		MaxDelay:          time.Millisecond,
		Workers:           3,
		ResendLastOnAdopt: true,
		LocalNodes:        []int{1, 2},
	}.Validate()
	if err == nil {
		t.Fatal("Validate accepted flat alias fields")
	}
	var fce *FlatConfigError
	if !errors.As(err, &fce) {
		t.Fatalf("Validate error is %T, want *FlatConfigError", err)
	}
	if got, want := fce.Fields, []string{"MaxDelay", "Workers", "ResendLastOnAdopt", "LocalNodes"}; !slices.Equal(got, want) {
		t.Fatalf("FlatConfigError.Fields = %v, want %v", got, want)
	}
	for _, f := range fce.Fields {
		if !strings.Contains(err.Error(), f) {
			t.Errorf("error text does not name %s: %q", f, err)
		}
	}

	grouped := LiveConfig{
		Delivery: LiveDeliveryOptions{MaxDelay: time.Millisecond, Workers: 3},
		Failure:  LiveFailureOptions{HbEvery: time.Millisecond, ResendLastOnAdopt: true},
		Distributed: LiveDistributedOptions{
			LocalNodes: []int{1, 2}, StartupGrace: time.Minute,
		},
	}
	if err := grouped.Validate(); err != nil {
		t.Fatalf("grouped-only config rejected: %v", err)
	}
}

// TestNewLiveClusterPanicsOnFlatAliases: the constructor refuses to build a
// cluster whose config carries values it would have to ignore.
func TestNewLiveClusterPanicsOnFlatAliases(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("NewLiveCluster accepted a flat alias field")
		}
		if _, ok := r.(*FlatConfigError); !ok {
			t.Fatalf("panic value is %T, want *FlatConfigError", r)
		}
	}()
	NewLiveCluster(LiveConfig{
		Topology: BalancedTree(2, 2),
		HbEvery:  time.Millisecond, // deprecated spelling of Failure.HbEvery
	})
}

// TestDistributedExpositionIncludesTransport runs a two-participant TCP
// deployment and checks each participant's registry carries the transport
// families next to the detector ones — the full scrape surface of a
// distributed node.
func TestDistributedExpositionIncludesTransport(t *testing.T) {
	topo := ChainTree(2)
	mkTransport := func() *TCPTransport {
		tr, err := NewTCPTransport(TCPConfig{Listen: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	trs := []*TCPTransport{mkTransport(), mkTransport()}
	addrs := map[int]string{0: trs[0].Addr(), 1: trs[1].Addr()}
	for _, tr := range trs {
		tr.SetPeers(addrs)
	}

	exec := GenerateWorkload(topo, 6, 3, 1, 0, 0)
	clusters := make([]*LiveCluster, 2)
	for id := 0; id < 2; id++ {
		clusters[id] = NewLiveCluster(LiveConfig{
			Topology: topo, Seed: 3, Verify: true,
			Distributed: LiveDistributedOptions{
				Transport:  trs[id],
				LocalNodes: []int{id},
			},
		})
	}
	for k := 0; k < 6; k++ {
		for id := 0; id < 2; id++ {
			clusters[id].Observe(id, exec.Streams[id][k])
		}
	}
	// The root eventually sees all 6 pulses flow in over TCP.
	deadline := time.Now().Add(20 * time.Second)
	for clusters[0].ClusterMetrics().Detections < 6 {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for detections over the transport")
		}
		time.Sleep(2 * time.Millisecond)
	}

	var sb strings.Builder
	if err := clusters[0].Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE hierdet_transport_frames_in_total counter",
		"# TYPE hierdet_transport_frames_out_total counter",
		"hierdet_transport_bytes_in_total",
		"hierdet_transport_bytes_out_total",
		"hierdet_transport_dials_total",
		"hierdet_transport_redelivery_ring",
		"hierdet_node_msgs_in_total",
		"hierdet_sched_workers",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("distributed exposition missing %q", want)
		}
	}
	st := trs[0].Stats()
	if st.BytesIn == 0 {
		t.Error("transport BytesIn stayed zero on a run that received frames")
	}

	for id := 1; id >= 0; id-- {
		clusters[id].Stop()
	}
}
