package hierdet

import (
	"strings"
	"testing"
	"time"
)

// TestLiveConfigResolveGroupedVsFlat pins the alias semantics of the grouped
// LiveConfig: a grouped field wins where set, the deprecated flat field
// fills it where not, and booleans OR.
func TestLiveConfigResolveGroupedVsFlat(t *testing.T) {
	// Flat-only config: everything folds into the groups.
	flat := LiveConfig{
		MaxDelay:          time.Millisecond,
		Workers:           3,
		MailboxBound:      128,
		BatchWindow:       time.Microsecond,
		HbEvery:           2 * time.Millisecond,
		HbTimeout:         9 * time.Millisecond,
		SeekTimeout:       time.Second,
		ResendLastOnAdopt: true,
		LocalNodes:        []int{1, 2},
		StartupGrace:      time.Minute,
	}.resolve()
	if flat.Delivery.MaxDelay != time.Millisecond || flat.Delivery.Workers != 3 ||
		flat.Delivery.MailboxBound != 128 || flat.Delivery.BatchWindow != time.Microsecond {
		t.Errorf("flat delivery fields not folded: %+v", flat.Delivery)
	}
	if flat.Failure.HbEvery != 2*time.Millisecond || flat.Failure.HbTimeout != 9*time.Millisecond ||
		flat.Failure.SeekTimeout != time.Second || !flat.Failure.ResendLastOnAdopt {
		t.Errorf("flat failure fields not folded: %+v", flat.Failure)
	}
	if len(flat.Distributed.LocalNodes) != 2 || flat.Distributed.StartupGrace != time.Minute {
		t.Errorf("flat distributed fields not folded: %+v", flat.Distributed)
	}

	// Grouped set alongside conflicting flat values: grouped wins.
	both := LiveConfig{
		Delivery:  LiveDeliveryOptions{MaxDelay: 5 * time.Millisecond, Workers: 7},
		Failure:   LiveFailureOptions{HbEvery: time.Second},
		MaxDelay:  time.Nanosecond,
		Workers:   1,
		HbEvery:   time.Nanosecond,
		HbTimeout: 4 * time.Second,
	}.resolve()
	if both.Delivery.MaxDelay != 5*time.Millisecond || both.Delivery.Workers != 7 {
		t.Errorf("grouped delivery lost to flat aliases: %+v", both.Delivery)
	}
	if both.Failure.HbEvery != time.Second {
		t.Errorf("grouped HbEvery lost to flat alias: %v", both.Failure.HbEvery)
	}
	// Unset grouped fields still pick up their flat alias.
	if both.Failure.HbTimeout != 4*time.Second {
		t.Errorf("unset grouped HbTimeout ignored flat alias: %v", both.Failure.HbTimeout)
	}
}

// TestLiveClusterFlatAndGroupedEquivalent runs the same workload through a
// flat-configured and a grouped-configured cluster and expects identical
// detection counts — the deprecated spelling stays a strict synonym.
func TestLiveClusterFlatAndGroupedEquivalent(t *testing.T) {
	const rounds = 8
	run := func(cfg LiveConfig) int {
		topo := BalancedTree(2, 2)
		cfg.Topology, cfg.Seed, cfg.Verify = topo, 5, true
		exec := GenerateWorkload(topo, rounds, 5, 1, 0, 0)
		c := NewLiveCluster(cfg)
		for p := 0; p < topo.N(); p++ {
			for _, iv := range exec.Streams[p] {
				c.Observe(p, iv)
			}
		}
		roots := 0
		for _, d := range c.Stop() {
			if d.AtRoot {
				roots++
			}
		}
		return roots
	}
	flat := run(LiveConfig{MaxDelay: 300 * time.Microsecond, BatchWindow: 100 * time.Microsecond})
	grouped := run(LiveConfig{Delivery: LiveDeliveryOptions{
		MaxDelay: 300 * time.Microsecond, BatchWindow: 100 * time.Microsecond}})
	if flat != rounds || grouped != rounds {
		t.Fatalf("flat = %d, grouped = %d root detections, want %d each", flat, grouped, rounds)
	}
}

// TestDistributedExpositionIncludesTransport runs a two-participant TCP
// deployment and checks each participant's registry carries the transport
// families next to the detector ones — the full scrape surface of a
// distributed node.
func TestDistributedExpositionIncludesTransport(t *testing.T) {
	topo := ChainTree(2)
	mkTransport := func() *TCPTransport {
		tr, err := NewTCPTransport(TCPConfig{Listen: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	trs := []*TCPTransport{mkTransport(), mkTransport()}
	addrs := map[int]string{0: trs[0].Addr(), 1: trs[1].Addr()}
	for _, tr := range trs {
		tr.SetPeers(addrs)
	}

	exec := GenerateWorkload(topo, 6, 3, 1, 0, 0)
	clusters := make([]*LiveCluster, 2)
	for id := 0; id < 2; id++ {
		clusters[id] = NewLiveCluster(LiveConfig{
			Topology: topo, Seed: 3, Verify: true,
			Distributed: LiveDistributedOptions{
				Transport:  trs[id],
				LocalNodes: []int{id},
			},
		})
	}
	for k := 0; k < 6; k++ {
		for id := 0; id < 2; id++ {
			clusters[id].Observe(id, exec.Streams[id][k])
		}
	}
	// The root eventually sees all 6 pulses flow in over TCP.
	deadline := time.Now().Add(20 * time.Second)
	for clusters[0].ClusterMetrics().Detections < 6 {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for detections over the transport")
		}
		time.Sleep(2 * time.Millisecond)
	}

	var sb strings.Builder
	if err := clusters[0].Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE hierdet_transport_frames_in_total counter",
		"# TYPE hierdet_transport_frames_out_total counter",
		"hierdet_transport_bytes_in_total",
		"hierdet_transport_bytes_out_total",
		"hierdet_transport_dials_total",
		"hierdet_transport_redelivery_ring",
		"hierdet_node_msgs_in_total",
		"hierdet_sched_workers",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("distributed exposition missing %q", want)
		}
	}
	st := trs[0].Stats()
	if st.BytesIn == 0 {
		t.Error("transport BytesIn stayed zero on a run that received frames")
	}

	for id := 1; id >= 0; id-- {
		clusters[id].Stop()
	}
}
