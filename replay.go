package hierdet

import (
	"hierdet/internal/replay"
	"hierdet/internal/wire"
)

// replay.go — the public face of the trace capture / deterministic replay
// subsystem (internal/replay). A TraceRecorder drives a live deployment
// through a declared schedule of observation phases and crash-stops and
// captures the inputs, the lifecycle event stream and the canonical
// detection outcome into a compact binary Trace; a TraceReplayer re-executes
// a Trace through any delivery plane at adjustable speed and checks the
// outcome byte-for-byte. See the internal/replay package comment (and
// DESIGN.md §14) for the determinism model — which schedules are
// byte-reproducible and why.

// Trace is one recorded execution: topology, workload spec, schedule,
// lifecycle events and the canonical detection outcome.
type Trace = replay.Trace

// TraceWorkload is the recorded workload-generator input; together with the
// topology it regenerates the exact interval streams.
type TraceWorkload = replay.WorkloadSpec

// TraceStep is one schedule entry — an observation phase or a crash-stop,
// each quantized to a quiescent barrier.
type TraceStep = replay.Step

// TraceStepKind discriminates schedule steps.
type TraceStepKind = replay.StepKind

// Schedule step kinds.
const (
	// TraceStepObserve feeds a round range of every alive process, then
	// settles.
	TraceStepObserve = replay.StepObserve
	// TraceStepKill crash-stops one process and waits for the repairs it
	// caused to conclude.
	TraceStepKill = replay.StepKill
)

// TraceEvent is one recorded lifecycle event (the scalar projection of
// Event, plus its offset from session start).
type TraceEvent = replay.EventRec

// Delivery plane names for recording and replay — the same four lanes the
// scale benchmarks run.
const (
	PlaneLegacy   = replay.PlaneLegacy
	PlaneSharded  = replay.PlaneSharded
	PlaneBatched  = replay.PlaneBatched
	PlaneParallel = replay.PlaneParallel
)

// ReplayPlanes lists every delivery plane name.
func ReplayPlanes() []string { return replay.Planes() }

// TraceDeliveryOptions groups a recording's message-plane knobs.
type TraceDeliveryOptions = replay.DeliveryOptions

// TraceFailureOptions groups a recording's failure-handling knobs; HbEvery
// must be set for schedules containing kills.
type TraceFailureOptions = replay.FailureOptions

// TraceRecorderConfig declares a recording session: topology, workload,
// schedule, plane and the grouped runtime options.
type TraceRecorderConfig = replay.RecorderConfig

// TraceRecorder drives a live deployment through a schedule and captures
// the trace. NewTraceRecorder starts the deployment; Run executes and
// returns the Trace; Close/Shutdown release an interrupted session.
type TraceRecorder = replay.Recorder

// NewTraceRecorder validates the configuration (returning a
// *ReplayConfigError on misuse) and starts the deployment.
func NewTraceRecorder(cfg TraceRecorderConfig) (*TraceRecorder, error) {
	return replay.NewRecorder(cfg)
}

// TraceReplayerConfig parameterizes a replay: plane override, pacing speed
// and a live event tap. The zero value replays on the recorded plane as
// fast as the barriers allow.
type TraceReplayerConfig = replay.ReplayerConfig

// TraceReplayer re-executes a recorded trace. NewTraceReplayer starts the
// deployment; Run executes and returns the ReplayResult; Close/Shutdown
// release an interrupted session.
type TraceReplayer = replay.Replayer

// ReplayResult is the outcome of one replay, including the byte-parity
// verdict against the recording.
type ReplayResult = replay.Result

// NewTraceReplayer validates the trace, reconstructs its topology and
// starts the replay deployment.
func NewTraceReplayer(t *Trace, cfg TraceReplayerConfig) (*TraceReplayer, error) {
	return replay.NewReplayer(t, cfg)
}

// ReplayConfigError is the typed misuse error of the replay API: Field
// names the offending configuration field, Reason says what about it.
type ReplayConfigError = replay.ConfigError

// Decode error sentinels (the wire package's classification, shared by the
// trace codec): a corrupt input is structurally invalid, a truncated one is
// shorter than its fields claim. Test with errors.Is.
var (
	ErrTraceCorrupt   = wire.ErrCorrupt
	ErrTraceTruncated = wire.ErrTruncated
)

// EncodeTrace appends t's binary encoding to dst and returns the extended
// buffer.
func EncodeTrace(dst []byte, t *Trace) []byte { return replay.AppendTrace(dst, t) }

// DecodeTrace parses a binary trace; errors wrap ErrTraceCorrupt or
// ErrTraceTruncated.
func DecodeTrace(data []byte) (*Trace, error) { return replay.DecodeTrace(data) }

// TraceOutcomeRec is one decoded entry of a canonical outcome blob — the
// delivery-order-independent projection of a detection.
type TraceOutcomeRec = replay.OutcomeRec

// DecodeTraceOutcome parses a canonical outcome blob (Trace.Outcome or
// ReplayResult.Outcome) for parity-failure triage; errors wrap
// ErrTraceCorrupt or ErrTraceTruncated.
func DecodeTraceOutcome(data []byte) ([]TraceOutcomeRec, error) { return replay.DecodeOutcome(data) }

// WriteTraceFile atomically writes t to path.
func WriteTraceFile(path string, t *Trace) error { return replay.WriteFile(path, t) }

// ReadTraceFile reads and decodes a trace file.
func ReadTraceFile(path string) (*Trace, error) { return replay.ReadFile(path) }
