// Command freeport prints one free localhost TCP port, for shell scripts
// that need to hand a concrete address to a process before it starts
// (scripts/metrics_smoke.sh). Same reserve-and-release trick as
// hierdet-node -init uses for node ports.
//
// Reserve-and-release is racy by construction — the port is free only at
// the instant of release — so the caller must treat a later bind failure as
// retryable (metrics_smoke.sh retries the whole launch with fresh ports).
// This command only bounds its own failure mode: a transient Listen error
// (ephemeral range exhausted on a busy CI box) retries briefly instead of
// failing the script's first and only reservation.
package main

import (
	"fmt"
	"net"
	"os"
	"time"
)

func main() {
	var err error
	for attempt, backoff := 0, 10*time.Millisecond; attempt < 5; attempt, backoff = attempt+1, backoff*2 {
		var ln net.Listener
		ln, err = net.Listen("tcp", "127.0.0.1:0")
		if err == nil {
			port := ln.Addr().(*net.TCPAddr).Port
			ln.Close()
			fmt.Println(port)
			return
		}
		time.Sleep(backoff)
	}
	fmt.Fprintln(os.Stderr, "freeport:", err)
	os.Exit(1)
}
