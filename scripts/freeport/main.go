// Command freeport prints one free localhost TCP port, for shell scripts
// that need to hand a concrete address to a process before it starts
// (scripts/metrics_smoke.sh). Same reserve-and-release trick as
// hierdet-node -init uses for node ports.
package main

import (
	"fmt"
	"net"
	"os"
)

func main() {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "freeport:", err)
		os.Exit(1)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	fmt.Println(port)
}
