#!/usr/bin/env bash
# metrics_smoke.sh — end-to-end scrape check of the observability layer.
#
# Builds hierdet-node, generates a 3-node deployment, launches the three OS
# processes with node 0 serving its pprof/metrics endpoint, scrapes /metrics
# once traffic is flowing, and asserts the Prometheus exposition carries the
# core families of every plane: detector nodes, the scheduler, the timer
# wheel, the cluster ledger, events and the TCP transport. Localhost only.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
pids=()
cleanup() {
    kill "${pids[@]}" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/hierdet-node" ./cmd/hierdet-node

# Reserve a port for the metrics endpoint the same way the cluster file
# reserves node ports: bind an ephemeral listener, read it back, release it.
metrics_port=$(go run ./scripts/freeport 2>/dev/null || true)
if [ -z "$metrics_port" ]; then
    metrics_port=6464
fi
metrics_addr="127.0.0.1:$metrics_port"

"$workdir/hierdet-node" -init -o "$workdir/cluster.json" -n 3 -rounds 200 -phase1 199

"$workdir/hierdet-node" -config "$workdir/cluster.json" -id 0 -pprof "$metrics_addr" >"$workdir/node0.log" 2>&1 &
pids+=($!)
"$workdir/hierdet-node" -config "$workdir/cluster.json" -id 1 >"$workdir/node1.log" 2>&1 &
pids+=($!)
"$workdir/hierdet-node" -config "$workdir/cluster.json" -id 2 >"$workdir/node2.log" 2>&1 &
pids+=($!)

# Wait for the endpoint to answer and for detections to start flowing.
scrape="$workdir/metrics.txt"
ok=0
for _ in $(seq 1 100); do
    if curl -fsS "http://$metrics_addr/metrics" >"$scrape" 2>/dev/null &&
        grep -q 'hierdet_node_detections_total{node="0"} [1-9]' "$scrape"; then
        ok=1
        break
    fi
    sleep 0.2
done
if [ "$ok" != 1 ]; then
    echo "metrics_smoke: no scrape with detections after 20s" >&2
    echo "--- last scrape ---" >&2
    cat "$scrape" >&2 || true
    echo "--- node 0 log ---" >&2
    cat "$workdir/node0.log" >&2
    exit 1
fi

# Core series of every plane must be present in the exposition.
for series in \
    'hierdet_node_msgs_in_total{node="0"}' \
    'hierdet_node_intervals_in_total{node="0"}' \
    'hierdet_node_mailbox_depth{node="0"}' \
    'hierdet_sched_workers ' \
    'hierdet_sched_workers_busy ' \
    'hierdet_sched_drains_total ' \
    'hierdet_wheel_tick_seconds ' \
    'hierdet_wheel_entries ' \
    'hierdet_cluster_nodes 1' \
    'hierdet_transport_frames_in_total ' \
    'hierdet_transport_frames_out_total ' \
    'hierdet_transport_dials_total ' \
    'hierdet_events_total{kind="interval_observed"}' \
    'hierdet_events_total{kind="solution_found"}' \
    'hierdet_events_total{kind="report_recv"}'; do
    if ! grep -qF "$series" "$scrape"; then
        echo "metrics_smoke: exposition missing '$series'" >&2
        cat "$scrape" >&2
        exit 1
    fi
done

# Valid exposition shape: every non-comment line is `name{labels} value`.
if grep -vE '^(#|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+-]+|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (\+|-)?Inf|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? NaN|$)' "$scrape" >&2; then
    echo "metrics_smoke: malformed exposition lines above" >&2
    exit 1
fi

echo "metrics_smoke: OK ($(grep -c '^hierdet_' "$scrape") hierdet series scraped from $metrics_addr)"
