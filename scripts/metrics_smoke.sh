#!/usr/bin/env bash
# metrics_smoke.sh — end-to-end scrape check of the observability layer.
#
# Builds hierdet-node, generates a 3-node deployment, launches the three OS
# processes with node 0 serving its pprof/metrics endpoint, scrapes /metrics
# once traffic is flowing, and asserts the Prometheus exposition carries the
# core families of every plane: detector nodes, the scheduler, the timer
# wheel, the cluster ledger, events and the TCP transport. A second phase
# re-runs the deployment with -tenants 2 and asserts the tenant plane's
# families — per-tenant counters, the shared scheduler substrate (plane
# workers, wheel lag histogram, per-tenant mailbox high-water), lease state
# and the mux drop counter — appear with both tenant labels. Localhost only.
#
# Ports are reserved with the bind-read-release trick (scripts/freeport for
# the metrics endpoint, hierdet-node -init for the node ports), which is
# inherently racy: another process can grab a port in the window between
# release and re-bind, and on a shared CI box that window loses now and
# then. Losing it is detectable but not recoverable mid-run — a node that
# failed to bind is dead — so the whole attempt (reserve ports, init,
# launch, scrape) retries with fresh ports under a bounded backoff instead
# of failing the build on the first collision.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
pids=()
stop_nodes() {
    if [ "${#pids[@]}" -gt 0 ]; then
        kill "${pids[@]}" 2>/dev/null || true
        wait "${pids[@]}" 2>/dev/null || true
        pids=()
    fi
}
cleanup() {
    stop_nodes
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/hierdet-node" ./cmd/hierdet-node

# attempt: fresh ports, fresh cluster file, launch, poll for a scrape with
# detections. Returns nonzero on any failure (bind lost, endpoint never
# answered, no detections) so the caller can back off and retry; a lost
# bind surfaces either as "address already in use" in a node log (checked
# each poll, fails the attempt immediately) or as a scrape timeout.
scrape="$workdir/metrics.txt"
metrics_addr=""
# attempt <tenants> <ready-series>: fresh ports, fresh cluster file, launch,
# poll until a scrape carries the ready series with a nonzero value.
attempt() {
    local tenants="$1" ready="$2" metrics_port
    metrics_port=$(go run ./scripts/freeport 2>/dev/null || true)
    if [ -z "$metrics_port" ]; then
        metrics_port=6464
    fi
    metrics_addr="127.0.0.1:$metrics_port"

    "$workdir/hierdet-node" -init -o "$workdir/cluster.json" -n 3 -rounds 200 -phase1 199 -tenants "$tenants"

    "$workdir/hierdet-node" -config "$workdir/cluster.json" -id 0 -pprof "$metrics_addr" >"$workdir/node0.log" 2>&1 &
    pids+=($!)
    "$workdir/hierdet-node" -config "$workdir/cluster.json" -id 1 >"$workdir/node1.log" 2>&1 &
    pids+=($!)
    "$workdir/hierdet-node" -config "$workdir/cluster.json" -id 2 >"$workdir/node2.log" 2>&1 &
    pids+=($!)

    for _ in $(seq 1 75); do
        if curl -fsS "http://$metrics_addr/metrics" >"$scrape" 2>/dev/null &&
            grep -q "$ready" "$scrape"; then
            return 0
        fi
        if grep -l 'address already in use' "$workdir"/node*.log >/dev/null 2>&1; then
            echo "metrics_smoke: a node lost its reserved port (address already in use)" >&2
            return 1
        fi
        sleep 0.2
    done
    echo "metrics_smoke: no scrape with detections after 15s on $metrics_addr" >&2
    return 1
}

max_attempts=5
# run_phase <tenants> <ready-series>: the attempt loop with bounded backoff.
run_phase() {
    local tenants="$1" ready="$2" ok=0 try
    for try in $(seq 1 "$max_attempts"); do
        if attempt "$tenants" "$ready"; then
            ok=1
            break
        fi
        stop_nodes
        if [ "$try" -lt "$max_attempts" ]; then
            echo "metrics_smoke: attempt $try/$max_attempts failed; retrying with fresh ports in ${try}s" >&2
            sleep "$try"
        fi
    done
    if [ "$ok" != 1 ]; then
        echo "metrics_smoke: all $max_attempts attempts failed" >&2
        echo "--- last scrape ---" >&2
        cat "$scrape" >&2 || true
        echo "--- node 0 log ---" >&2
        cat "$workdir/node0.log" >&2
        exit 1
    fi
}

run_phase 1 'hierdet_node_detections_total{node="0"} [1-9]'

# Core series of every plane must be present in the exposition.
for series in \
    'hierdet_node_msgs_in_total{node="0"}' \
    'hierdet_node_intervals_in_total{node="0"}' \
    'hierdet_node_mailbox_depth{node="0"}' \
    'hierdet_sched_workers ' \
    'hierdet_sched_workers_busy ' \
    'hierdet_sched_drains_total ' \
    'hierdet_wheel_tick_seconds ' \
    'hierdet_wheel_entries ' \
    'hierdet_cluster_nodes 1' \
    'hierdet_transport_frames_in_total ' \
    'hierdet_transport_frames_out_total ' \
    'hierdet_transport_dials_total ' \
    'hierdet_latency_observe_to_solution_seconds_bucket' \
    'hierdet_latency_observe_to_solution_seconds_count' \
    'hierdet_events_total{kind="interval_observed"}' \
    'hierdet_events_total{kind="solution_found"}' \
    'hierdet_events_total{kind="report_recv"}'; do
    if ! grep -qF "$series" "$scrape"; then
        echo "metrics_smoke: exposition missing '$series'" >&2
        cat "$scrape" >&2
        exit 1
    fi
done

# Valid exposition shape: every non-comment line is `name{labels} value`.
check_shape() {
    if grep -vE '^(#|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+-]+|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (\+|-)?Inf|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? NaN|$)' "$scrape" >&2; then
        echo "metrics_smoke: malformed exposition lines above" >&2
        exit 1
    fi
}

# Family drift gate: every hierdet_* family in the scrape must be known here.
# A new family passing silently is how exposition drift sneaks past review —
# adding one means adding it to this allowlist (and, if it's load-bearing, to
# the per-series assertions above).
sort >"$workdir/known_families.txt" <<'EOF'
hierdet_cluster_killed_processes
hierdet_cluster_nodes
hierdet_cluster_pending_credits
hierdet_detect_busy
hierdet_detect_fanout_rounds_total
hierdet_detect_inline_rounds_total
hierdet_detect_tasks_total
hierdet_detect_workers
hierdet_events_total
hierdet_latency_observe_to_solution_seconds
hierdet_lease_buckets_owned
hierdet_lease_monitors_live
hierdet_mux_dropped_total
hierdet_node_bad_frames_total
hierdet_node_batch_flushes_total
hierdet_node_child_drops_total
hierdet_node_detections_total
hierdet_node_duplicates_total
hierdet_node_eliminated_total
hierdet_node_filtered_comparisons_total
hierdet_node_heartbeats_total
hierdet_node_intervals_in_total
hierdet_node_mailbox_depth
hierdet_node_mailbox_high_water
hierdet_node_memo_hits_total
hierdet_node_msgs_in_total
hierdet_node_msgs_out_total
hierdet_node_pruned_total
hierdet_node_queue_depth
hierdet_node_queue_high_water
hierdet_node_repairs_total
hierdet_node_reseq_buffered
hierdet_node_reseq_high_water
hierdet_node_stale_reports_total
hierdet_node_vec_comparisons_total
hierdet_plane_busy_workers
hierdet_plane_wheel_entries
hierdet_plane_wheel_lag_seconds
hierdet_plane_wheel_ticks_total
hierdet_plane_workers
hierdet_sched_drain_batch_size
hierdet_sched_drains_total
hierdet_sched_mailbox_bound
hierdet_sched_messages_handled_total
hierdet_sched_runq_depth
hierdet_sched_workers
hierdet_sched_workers_busy
hierdet_tenant_detections_total
hierdet_tenant_intervals_in_total
hierdet_tenant_mailbox_high_water
hierdet_tenant_msgs_in_total
hierdet_tenant_msgs_out_total
hierdet_tenant_owned
hierdet_tenant_repairs_total
hierdet_tenants
hierdet_tenants_evicted_total
hierdet_tenants_registered_total
hierdet_transport_backlog_depth
hierdet_transport_backlog_dropped_total
hierdet_transport_bytes_in_total
hierdet_transport_bytes_out_total
hierdet_transport_corrupt_frames_total
hierdet_transport_dials_total
hierdet_transport_flushes_total
hierdet_transport_frames_in_total
hierdet_transport_frames_out_total
hierdet_transport_peers
hierdet_transport_redelivered_total
hierdet_transport_redelivery_ring
hierdet_transport_redials_total
hierdet_transport_tenant_batches_in_total
hierdet_transport_tenant_batches_out_total
hierdet_transport_tenant_frames_coalesced_total
hierdet_wheel_entries
hierdet_wheel_lag_seconds
hierdet_wheel_tick_seconds
hierdet_wheel_ticks_total
EOF
check_families() {
    grep -oE '^hierdet_[a-z0-9_]+' "$scrape" |
        sed -E 's/_(bucket|sum|count)$//' | sort -u >"$workdir/scraped_families.txt"
    local unknown
    unknown=$(comm -23 "$workdir/scraped_families.txt" "$workdir/known_families.txt")
    if [ -n "$unknown" ]; then
        echo "metrics_smoke: exposition carries unknown families (add them to the allowlist):" >&2
        echo "$unknown" >&2
        exit 1
    fi
}
check_shape
check_families
single_series=$(grep -c '^hierdet_' "$scrape")

# Phase 2: the same 3-process deployment serving two tenants. The scrape now
# comes from the tenant plane's registry: per-tenant families labelled t0/t1,
# the process's lease view and the mux drop counter, with the shared
# transport's families alongside.
stop_nodes
run_phase 2 'hierdet_tenant_detections_total{tenant="t0"} [1-9]'

for series in \
    'hierdet_tenants 2' \
    'hierdet_tenants_registered_total 2' \
    'hierdet_plane_workers ' \
    'hierdet_plane_busy_workers ' \
    'hierdet_plane_wheel_entries ' \
    'hierdet_plane_wheel_ticks_total ' \
    'hierdet_plane_wheel_lag_seconds_bucket' \
    'hierdet_plane_wheel_lag_seconds_count' \
    'hierdet_tenant_mailbox_high_water{tenant="t0"}' \
    'hierdet_tenant_mailbox_high_water{tenant="t1"}' \
    'hierdet_tenant_detections_total{tenant="t0"}' \
    'hierdet_tenant_detections_total{tenant="t1"}' \
    'hierdet_tenant_intervals_in_total{tenant="t0"}' \
    'hierdet_tenant_intervals_in_total{tenant="t1"}' \
    'hierdet_tenant_msgs_in_total{tenant="t0"}' \
    'hierdet_tenant_msgs_out_total{tenant="t1"}' \
    'hierdet_tenant_owned{tenant="t0"} 1' \
    'hierdet_tenant_owned{tenant="t1"} 1' \
    'hierdet_lease_buckets_owned{monitor="node-0"} 256' \
    'hierdet_lease_monitors_live 1' \
    'hierdet_mux_dropped_total 0' \
    'hierdet_transport_frames_in_total ' \
    'hierdet_transport_frames_out_total '; do
    if ! grep -qF "$series" "$scrape"; then
        echo "metrics_smoke: tenant exposition missing '$series'" >&2
        cat "$scrape" >&2
        exit 1
    fi
done
check_shape
check_families

echo "metrics_smoke: OK ($single_series single-tenant + $(grep -c '^hierdet_' "$scrape") tenant-plane hierdet series scraped from $metrics_addr)"
