package hierdet

import (
	"hierdet/internal/monitor"
	"hierdet/internal/simnet"
	"hierdet/internal/workload"
)

// Algorithm selects which detector a simulation runs.
type Algorithm int

const (
	// HierarchicalAlgorithm is this paper's Algorithm 1.
	HierarchicalAlgorithm Algorithm = iota
	// CentralizedAlgorithm is the repeated-detection baseline [12].
	CentralizedAlgorithm
)

// Failure schedules a crash-stop failure of Node at virtual time At.
type Failure struct {
	At   int64
	Node int
}

// SimConfig parameterizes Simulate.
type SimConfig struct {
	// Topology is the spanning tree to monitor over (see BalancedTree and
	// friends). Simulate leaves it unmodified.
	Topology *Topology
	// Algorithm selects hierarchical (default) or centralized detection.
	Algorithm Algorithm

	// Rounds is the number of workload rounds — the paper's p: each process
	// produces one local-predicate interval per round.
	Rounds int
	// PGlobal is the probability a round synchronizes all processes (one
	// global predicate occurrence); PGroup the probability it synchronizes
	// each subtree at a random depth (group-level occurrences only);
	// PSubset the probability a random, tree-oblivious process subset
	// synchronizes. The remainder of rounds produce causally isolated
	// intervals.
	PGlobal, PGroup, PSubset float64

	// Seed fixes workload, delays and jitter. Runs are bit-reproducible.
	Seed int64

	// MinDelay/MaxDelay bound per-hop network delay in virtual ticks
	// (defaults 1 and 10); RoundSpacing is the virtual time between rounds
	// (default 1000).
	MinDelay, MaxDelay int64
	RoundSpacing       int64
	// FIFO forces per-link in-order delivery (the model is non-FIFO).
	FIFO bool
	// LossProb drops messages with the given probability — a deliberate
	// violation of the model's reliable channels (safety is preserved,
	// detections are missed). Incompatible with Heartbeats.
	LossProb float64
	// BatchWindow, when positive, buffers each node's reports and flushes
	// them as one message per window — an optimization beyond the paper
	// (hierarchical algorithm only; costs up to one window of latency).
	BatchWindow int64
	// DiffTimestamps accounts report bytes with differential vector-clock
	// encoding per link (Singhal–Kshemkalyani); requires FIFO.
	DiffTimestamps bool

	// Failures injects crash-stop failures.
	Failures []Failure
	// Heartbeats enables heartbeat-based failure detection (period
	// HbEvery, suspicion after HbTimeout; defaults 100/400 when enabled).
	// Without heartbeats, failures repair the tree instantly — convenient
	// for deterministic experiments.
	Heartbeats         bool
	HbEvery, HbTimeout int64
	// DistributedRepair replaces the simulator's topology oracle with the
	// message-driven reattachment protocol: orphan subtrees negotiate
	// adoption with live neighbours over the network (requires Heartbeats;
	// hierarchical algorithm only).
	DistributedRepair bool
	// ResendLastOnAdopt re-reports a subtree's latest aggregate after its
	// parent died (recovers in-flight loss, may duplicate a detection).
	ResendLastOnAdopt bool

	// Verify enables internal order checking and retains solution sets so
	// detections can be expanded and validated. Costs memory; intended for
	// tests and examples.
	Verify bool

	// OnDetection, if non-nil, streams every detection (all levels) as it
	// happens, before the run completes — the subscription hook for
	// continuous monitoring. Called on the simulation goroutine.
	OnDetection func(SimDetection)
}

// SimDetection is one detection observed during a simulation, with its
// virtual time, the detecting node, and whether that node was a tree root
// (root detections cover the whole surviving network).
type SimDetection = monitor.Detection

// SimResult is everything a simulation produced: detections at every level,
// traffic statistics, per-node work counters and space high-water marks.
type SimResult = monitor.Result

// NetStats is the simulated network's traffic counters.
type NetStats = simnet.Stats

// Simulate generates a workload over cfg.Topology, deploys the selected
// detector on a simulated asynchronous network, runs it to completion and
// returns the result. Deterministic in cfg.Seed.
func Simulate(cfg SimConfig) *SimResult {
	if cfg.Topology == nil {
		panic("hierdet: SimConfig.Topology is required")
	}
	exec := workload.Generate(workload.Config{
		Topology: cfg.Topology,
		Rounds:   cfg.Rounds,
		Seed:     cfg.Seed,
		PGlobal:  cfg.PGlobal,
		PGroup:   cfg.PGroup,
		PSubset:  cfg.PSubset,
	})
	return SimulateExecution(cfg, exec)
}

// SimulateExecution runs a simulation over a pre-generated execution —
// useful for running both algorithms, or several configurations, on
// identical input. cfg.Rounds/PGlobal/PGroup are ignored.
func SimulateExecution(cfg SimConfig, exec *workload.Execution) *SimResult {
	if cfg.Topology == nil {
		panic("hierdet: SimConfig.Topology is required")
	}
	mode := monitor.Hierarchical
	if cfg.Algorithm == CentralizedAlgorithm {
		mode = monitor.Centralized
	}
	hbEvery, hbTimeout := int64(0), int64(0)
	if cfg.Heartbeats {
		hbEvery, hbTimeout = cfg.HbEvery, cfg.HbTimeout
		if hbEvery == 0 {
			hbEvery = 100
		}
		if hbTimeout == 0 {
			hbTimeout = 400
		}
	}
	runner := monitor.NewRunner(monitor.Config{
		Mode:              mode,
		Topology:          cfg.Topology.Clone(),
		Exec:              exec,
		Seed:              cfg.Seed,
		MinDelay:          simnet.Time(cfg.MinDelay),
		MaxDelay:          simnet.Time(cfg.MaxDelay),
		FIFO:              cfg.FIFO,
		LossProb:          cfg.LossProb,
		BatchWindow:       simnet.Time(cfg.BatchWindow),
		DiffTimestamps:    cfg.DiffTimestamps,
		Spacing:           simnet.Time(cfg.RoundSpacing),
		HbEvery:           simnet.Time(hbEvery),
		HbTimeout:         simnet.Time(hbTimeout),
		Strict:            cfg.Verify,
		KeepMembers:       cfg.Verify,
		ResendLastOnAdopt: cfg.ResendLastOnAdopt,
		DistributedRepair: cfg.DistributedRepair,
		OnDetection:       cfg.OnDetection,
	})
	for _, f := range cfg.Failures {
		runner.ScheduleFailure(simnet.Time(f.At), f.Node)
	}
	return runner.Run()
}

// GenerateWorkload exposes the round-based workload generator for use with
// SimulateExecution. The probabilities select, per round, a global pulse, a
// group pulse, or a tree-oblivious random subset pulse (see
// SimConfig.PGlobal/PGroup/PSubset); their sum must not exceed 1.
func GenerateWorkload(topo *Topology, rounds int, seed int64, pGlobal, pGroup, pSubset float64) *workload.Execution {
	return workload.Generate(workload.Config{
		Topology: topo, Rounds: rounds, Seed: seed, PGlobal: pGlobal, PGroup: pGroup, PSubset: pSubset,
	})
}

// Execution is a recorded distributed execution: per-process interval
// streams plus ground-truth round structure.
type Execution = workload.Execution
