package hierdet

import (
	"time"

	"hierdet/internal/tenantplane"
)

// tenant.go — the public face of the multi-tenant detection plane. A
// TenantMultiplexer turns one process fleet into a detection service:
// RegisterPredicate instantiates an independent detection tree per tenant
// over one shared Transport (frames are tenant-tagged on the wire and
// demultiplexed on arrival), and an active/active fleet of monitors spreads
// tenant ownership over TenantBuckets lease buckets so any fleet member can
// own any tenant and a dead member's tenants are re-owned within one lease
// TTL. A single-predicate deployment keeps using NewLiveCluster; the
// multiplexer is the same runtime multiplied.

// TenantMultiplexer multiplexes many registered predicates — one detection
// tree each — over one shared node fleet and transport.
type TenantMultiplexer = tenantplane.Multiplexer

// TenantConfig parameterizes NewTenantMultiplexer: the shared transport and
// hosted nodes, the plane-level event sink, and this process's membership in
// the monitor fleet.
type TenantConfig = tenantplane.Config

// TenantSpec describes one predicate registration: the tenant's spanning
// tree plus per-cluster runtime tuning (zero values inherit the live
// cluster's defaults).
type TenantSpec = tenantplane.Spec

// TenantHandle is one registered tenant: feed it intervals with Observe,
// inspect its cluster, and Stop it to unregister and collect detections.
type TenantHandle = tenantplane.Handle

// LeaseTable is a monitor fleet's shared ownership state: TTL'd liveness
// records and per-bucket leases, valid exactly while the holder's record is
// current.
type LeaseTable = tenantplane.LeaseTable

// FleetMonitor is one member of the active/active monitor fleet, renewing
// its liveness record and rebalancing bucket leases toward the fleet's fair
// share.
type FleetMonitor = tenantplane.Monitor

// TenantBuckets is the fixed size of the tenant-ownership ring.
const TenantBuckets = tenantplane.BucketCount

// NewTenantMultiplexer builds the plane, starts its shared transport, and —
// when TenantConfig.Monitor is set — joins the monitor fleet.
func NewTenantMultiplexer(cfg TenantConfig) (*TenantMultiplexer, error) {
	return tenantplane.NewMultiplexer(cfg)
}

// NewLeaseTable builds a fleet lease table whose liveness records last ttl.
func NewLeaseTable(ttl time.Duration) *LeaseTable {
	return tenantplane.NewLeaseTable(ttl, nil)
}

// TenantBucket maps a tenant id onto its ownership bucket.
func TenantBucket(tenantID string) int {
	return tenantplane.BucketOf(tenantID)
}
