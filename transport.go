package hierdet

import (
	"hierdet/internal/transport"
	"hierdet/internal/transport/tcptransport"
)

// Transport carries wire-encoded frames between the participants of a
// distributed live cluster. Set LiveConfig.Transport to one of these to run a
// deployment where each participant hosts only a subset of the tree
// (LiveConfig.LocalNodes) and everything else is reached over the network.
//
// Two implementations ship with the module: NewTCPTransport for real sockets
// (one OS process per tree node — see cmd/hierdet-node), and NewMemNetwork's
// endpoints for deterministic in-process tests of distributed-mode semantics.
type Transport = transport.Transport

// TCPTransport is a Transport over real TCP connections: a listener for
// inbound frames and one lazily-dialled, backoff-retried connection per peer
// for outbound ones. See TCPConfig for tuning.
type TCPTransport = tcptransport.Transport

// TCPConfig parameterizes NewTCPTransport. Only Listen is required; Peers may
// be installed later with SetPeers once every participant has bound a port.
type TCPConfig = tcptransport.Config

// TCPStats is a snapshot of a TCPTransport's counters (frames in/out,
// dials, redials, redeliveries, drops).
type TCPStats = tcptransport.Stats

// NewTCPTransport binds the listen address immediately — Addr is valid right
// away, which lets a deployment with ":0" addresses exchange concrete ports
// before any cluster starts — but accepts and dials nothing until the cluster
// starts it.
func NewTCPTransport(cfg TCPConfig) (*TCPTransport, error) {
	return tcptransport.New(cfg)
}

// MemNetwork is an in-process Transport fabric: every Endpoint(id) is one
// participant, frames hop between them on goroutines with no sockets
// involved. It exists for tests and examples that want the distributed code
// paths (wire encoding, heartbeat liveness, remote repair) without real
// networking.
type MemNetwork = transport.Network

// NewMemNetwork builds an empty in-process fabric.
func NewMemNetwork() *MemNetwork {
	return transport.NewNetwork()
}
